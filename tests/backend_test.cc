// Cross-backend conformance suite: every registered backend must produce
// identical relational results (up to row order where the realization is
// unordered), parameterized over the four library bindings.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "backends/backends.h"
#include "core/backend.h"
#include "core/registry.h"
#include "storage/device_column.h"

namespace {

using core::AggOp;
using core::Backend;
using core::CompareOp;
using core::Predicate;
using storage::Column;
using storage::DataType;
using storage::DeviceColumn;

class BackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() { core::RegisterBuiltinBackends(); }

  void SetUp() override {
    backend_ = core::BackendRegistry::Instance().Create(GetParam());
  }

  DeviceColumn Upload(const std::vector<int32_t>& v) {
    return storage::UploadColumn(backend_->stream(), Column(v));
  }
  DeviceColumn Upload(const std::vector<double>& v) {
    return storage::UploadColumn(backend_->stream(), Column(v));
  }
  DeviceColumn Upload(const std::vector<int64_t>& v) {
    return storage::UploadColumn(backend_->stream(), Column(v));
  }
  DeviceColumn Upload(const std::vector<float>& v) {
    return storage::UploadColumn(backend_->stream(), Column(v));
  }

  template <typename T>
  std::vector<T> Download(const DeviceColumn& c) {
    return c.ToHost(backend_->stream()).values<T>();
  }

  /// Selection results may be unordered (handwritten backend); sort row ids.
  std::vector<int32_t> SortedRowIds(const core::SelectionResult& sel) {
    auto ids = Download<int32_t>(sel.row_ids);
    ids.resize(sel.count);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  std::unique_ptr<Backend> backend_;
};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendTest,
    ::testing::Values(backends::kThrust, backends::kBoostCompute,
                      backends::kArrayFire, backends::kHandwritten),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](char c) { return !isalnum(c); }),
                 name.end());
      return name;
    });

TEST_P(BackendTest, SelectEveryCompareOp) {
  const std::vector<int32_t> data{5, 1, 7, 5, -3, 9};
  DeviceColumn col = Upload(data);
  const struct {
    CompareOp op;
    std::vector<int32_t> expected;
  } cases[] = {
      {CompareOp::kLt, {1, 4}},        // < 5
      {CompareOp::kLe, {0, 1, 3, 4}},  // <= 5
      {CompareOp::kGt, {2, 5}},        // > 5
      {CompareOp::kGe, {0, 2, 3, 5}},  // >= 5
      {CompareOp::kEq, {0, 3}},        // == 5
      {CompareOp::kNe, {1, 2, 4, 5}},  // != 5
  };
  for (const auto& c : cases) {
    const auto sel =
        backend_->Select(col, Predicate::Make("x", c.op, 5.0));
    EXPECT_EQ(SortedRowIds(sel), c.expected)
        << "op " << static_cast<int>(c.op);
  }
}

TEST_P(BackendTest, SelectOnFloatColumn) {
  const std::vector<double> data{0.05, 0.07, 0.01, 0.06};
  DeviceColumn col = Upload(data);
  const auto sel =
      backend_->Select(col, Predicate::Make("d", CompareOp::kGe, 0.06));
  EXPECT_EQ(SortedRowIds(sel), (std::vector<int32_t>{1, 3}));
}

TEST_P(BackendTest, SelectEmptyResult) {
  DeviceColumn col = Upload(std::vector<int32_t>{1, 2, 3});
  const auto sel =
      backend_->Select(col, Predicate::Make("x", CompareOp::kGt, 100.0));
  EXPECT_EQ(sel.count, 0u);
}

TEST_P(BackendTest, SelectivitySweepMatchesReference) {
  std::mt19937 rng(99);
  std::vector<int32_t> data(50000);
  for (auto& v : data) v = static_cast<int32_t>(rng() % 1000);
  DeviceColumn col = Upload(data);
  for (const int32_t cut : {0, 10, 500, 990, 1000}) {
    const auto sel = backend_->Select(
        col, Predicate::Make("x", CompareOp::kLt, cut));
    std::vector<int32_t> expected;
    for (int32_t i = 0; i < static_cast<int32_t>(data.size()); ++i) {
      if (data[i] < cut) expected.push_back(i);
    }
    EXPECT_EQ(SortedRowIds(sel), expected) << "cut " << cut;
  }
}

TEST_P(BackendTest, ConjunctiveSelection) {
  const std::vector<int32_t> a{1, 5, 8, 2, 9, 5};
  const std::vector<double> b{0.9, 0.1, 0.2, 0.3, 0.15, 0.8};
  DeviceColumn ca = Upload(a);
  DeviceColumn cb = Upload(b);
  const auto sel = backend_->SelectConjunctive(
      {&ca, &cb}, {Predicate::Make("a", CompareOp::kGe, 5.0),
                   Predicate::Make("b", CompareOp::kLt, 0.5)});
  // rows where a>=5 and b<0.5: rows 1, 2, 4.
  EXPECT_EQ(SortedRowIds(sel), (std::vector<int32_t>{1, 2, 4}));
}

TEST_P(BackendTest, ConjunctiveSelectionThreePredicates) {
  std::mt19937 rng(7);
  const size_t n = 20000;
  std::vector<int32_t> a(n), b(n);
  std::vector<double> c(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng() % 100);
    b[i] = static_cast<int32_t>(rng() % 100);
    c[i] = (rng() % 100) / 100.0;
  }
  DeviceColumn ca = Upload(a), cb = Upload(b), cc = Upload(c);
  const auto sel = backend_->SelectConjunctive(
      {&ca, &cb, &cc}, {Predicate::Make("a", CompareOp::kLt, 50.0),
                        Predicate::Make("b", CompareOp::kGe, 20.0),
                        Predicate::Make("c", CompareOp::kLe, 0.5)});
  std::vector<int32_t> expected;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < 50 && b[i] >= 20 && c[i] <= 0.5) {
      expected.push_back(static_cast<int32_t>(i));
    }
  }
  EXPECT_EQ(SortedRowIds(sel), expected);
}

TEST_P(BackendTest, DisjunctiveSelection) {
  const std::vector<int32_t> a{1, 5, 8, 2, 9, 5};
  const std::vector<int32_t> b{0, 0, 0, 7, 0, 0};
  DeviceColumn ca = Upload(a);
  DeviceColumn cb = Upload(b);
  const auto sel = backend_->SelectDisjunctive(
      {&ca, &cb}, {Predicate::Make("a", CompareOp::kGt, 7.0),
                   Predicate::Make("b", CompareOp::kGt, 0.0)});
  // rows where a>7 or b>0: rows 2, 3, 4.
  EXPECT_EQ(SortedRowIds(sel), (std::vector<int32_t>{2, 3, 4}));
}

TEST_P(BackendTest, SelectCompareColumns) {
  const std::vector<int32_t> a{1, 5, 3, 9, 2};
  const std::vector<int32_t> b{2, 5, 1, 10, 2};
  DeviceColumn ca = Upload(a), cb = Upload(b);
  const auto lt =
      backend_->SelectCompareColumns(ca, CompareOp::kLt, cb);
  EXPECT_EQ(SortedRowIds(lt), (std::vector<int32_t>{0, 3}));
  const auto eq =
      backend_->SelectCompareColumns(ca, CompareOp::kEq, cb);
  EXPECT_EQ(SortedRowIds(eq), (std::vector<int32_t>{1, 4}));
  const auto ge =
      backend_->SelectCompareColumns(ca, CompareOp::kGe, cb);
  EXPECT_EQ(SortedRowIds(ge), (std::vector<int32_t>{1, 2, 4}));
}

TEST_P(BackendTest, SelectCompareColumnsOnDoubles) {
  std::mt19937 rng(77);
  const size_t n = 20000;
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = (rng() % 1000) / 10.0;
    b[i] = (rng() % 1000) / 10.0;
  }
  const auto sel = backend_->SelectCompareColumns(
      Upload(a), CompareOp::kLt, Upload(b));
  std::vector<int32_t> expected;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) expected.push_back(static_cast<int32_t>(i));
  }
  EXPECT_EQ(SortedRowIds(sel), expected);
}

TEST_P(BackendTest, UniqueDeduplicatesAndSorts) {
  const std::vector<int32_t> data{5, 1, 5, 3, 1, 1, 9, 3};
  const auto got = Download<int32_t>(backend_->Unique(Upload(data)));
  EXPECT_EQ(got, (std::vector<int32_t>{1, 3, 5, 9}));
}

TEST_P(BackendTest, UniqueLargeMatchesReference) {
  std::mt19937 rng(41);
  std::vector<int32_t> data(30000);
  for (auto& v : data) v = static_cast<int32_t>(rng() % 500);
  const auto got = Download<int32_t>(backend_->Unique(Upload(data)));
  std::set<int32_t> expected_set(data.begin(), data.end());
  const std::vector<int32_t> expected(expected_set.begin(),
                                      expected_set.end());
  EXPECT_EQ(got, expected);
}

TEST_P(BackendTest, NestedLoopsJoinPkFk) {
  // Unique build keys, FK probe side with misses and repeats.
  const std::vector<int32_t> left{10, 20, 30, 40};
  const std::vector<int32_t> right{20, 99, 10, 20, 40};
  DeviceColumn cl = Upload(left);
  DeviceColumn cr = Upload(right);
  const auto join = backend_->NestedLoopsJoin(cl, cr);
  ASSERT_EQ(join.count, 4u);
  auto lr = Download<int32_t>(join.left_rows);
  auto rr = Download<int32_t>(join.right_rows);
  lr.resize(join.count);
  rr.resize(join.count);
  std::vector<std::pair<int32_t, int32_t>> got;
  for (size_t i = 0; i < join.count; ++i) got.push_back({lr[i], rr[i]});
  std::sort(got.begin(), got.end());
  const std::vector<std::pair<int32_t, int32_t>> expected{
      {0, 2}, {1, 0}, {1, 3}, {3, 4}};
  EXPECT_EQ(got, expected);
}

TEST_P(BackendTest, HashJoinOnlySupportedByHandwritten) {
  const std::vector<int32_t> left{1, 2, 3};
  const std::vector<int32_t> right{2, 3, 4};
  DeviceColumn cl = Upload(left);
  DeviceColumn cr = Upload(right);
  if (GetParam() == backends::kHandwritten) {
    const auto join = backend_->HashJoin(cl, cr);
    EXPECT_EQ(join.count, 2u);
  } else {
    EXPECT_THROW(backend_->HashJoin(cl, cr), core::UnsupportedOperator);
  }
}

TEST_P(BackendTest, MergeJoinUnsupportedEverywhere) {
  DeviceColumn cl = Upload(std::vector<int32_t>{1});
  DeviceColumn cr = Upload(std::vector<int32_t>{1});
  EXPECT_THROW(backend_->MergeJoin(cl, cr), core::UnsupportedOperator);
}

TEST_P(BackendTest, GroupBySumMatchesReference) {
  std::mt19937 rng(31);
  const size_t n = 30000;
  std::vector<int32_t> keys(n);
  std::vector<double> vals(n);
  std::map<int32_t, double> ref;
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<int32_t>(rng() % 50);
    vals[i] = static_cast<double>(rng() % 100);
    ref[keys[i]] += vals[i];
  }
  DeviceColumn ck = Upload(keys);
  DeviceColumn cv = Upload(vals);
  const auto result = backend_->GroupByAggregate(ck, cv, AggOp::kSum);
  ASSERT_EQ(result.num_groups, ref.size());
  const auto gk = Download<int32_t>(result.keys);
  const auto gv = Download<double>(result.aggregate);
  for (size_t i = 0; i < result.num_groups; ++i) {
    ASSERT_TRUE(ref.count(gk[i]));
    EXPECT_DOUBLE_EQ(gv[i], ref[gk[i]]) << "key " << gk[i];
  }
}

TEST_P(BackendTest, GroupByCountMinMax) {
  const std::vector<int32_t> keys{7, 3, 7, 3, 7};
  const std::vector<double> vals{1.0, 9.0, -2.0, 4.0, 5.5};
  DeviceColumn ck = Upload(keys);
  DeviceColumn cv = Upload(vals);

  const auto count = backend_->GroupByAggregate(ck, cv, AggOp::kCount);
  ASSERT_EQ(count.num_groups, 2u);
  EXPECT_EQ(count.aggregate.type(), DataType::kInt64);
  std::map<int32_t, int64_t> counts;
  {
    const auto gk = Download<int32_t>(count.keys);
    const auto gc = Download<int64_t>(count.aggregate);
    for (size_t i = 0; i < 2; ++i) counts[gk[i]] = gc[i];
  }
  EXPECT_EQ(counts[7], 3);
  EXPECT_EQ(counts[3], 2);

  const auto mins = backend_->GroupByAggregate(ck, cv, AggOp::kMin);
  std::map<int32_t, double> min_by;
  {
    const auto gk = Download<int32_t>(mins.keys);
    const auto gv = Download<double>(mins.aggregate);
    for (size_t i = 0; i < 2; ++i) min_by[gk[i]] = gv[i];
  }
  EXPECT_DOUBLE_EQ(min_by[7], -2.0);
  EXPECT_DOUBLE_EQ(min_by[3], 4.0);

  const auto maxs = backend_->GroupByAggregate(ck, cv, AggOp::kMax);
  std::map<int32_t, double> max_by;
  {
    const auto gk = Download<int32_t>(maxs.keys);
    const auto gv = Download<double>(maxs.aggregate);
    for (size_t i = 0; i < 2; ++i) max_by[gk[i]] = gv[i];
  }
  EXPECT_DOUBLE_EQ(max_by[7], 5.5);
  EXPECT_DOUBLE_EQ(max_by[3], 9.0);
}

TEST_P(BackendTest, ReduceColumnAllOps) {
  const std::vector<double> vals{3.5, -1.5, 10.0, 2.0};
  DeviceColumn cv = Upload(vals);
  EXPECT_DOUBLE_EQ(backend_->ReduceColumn(cv, AggOp::kSum), 14.0);
  EXPECT_DOUBLE_EQ(backend_->ReduceColumn(cv, AggOp::kMin), -1.5);
  EXPECT_DOUBLE_EQ(backend_->ReduceColumn(cv, AggOp::kMax), 10.0);
  EXPECT_DOUBLE_EQ(backend_->ReduceColumn(cv, AggOp::kCount), 4.0);
}

TEST_P(BackendTest, ReduceIntColumns) {
  DeviceColumn c32 = Upload(std::vector<int32_t>{1, 2, 3});
  EXPECT_DOUBLE_EQ(backend_->ReduceColumn(c32, AggOp::kSum), 6.0);
  DeviceColumn c64 = Upload(std::vector<int64_t>{10, 20});
  EXPECT_DOUBLE_EQ(backend_->ReduceColumn(c64, AggOp::kMax), 20.0);
}

TEST_P(BackendTest, SortAllColumnTypes) {
  std::mt19937 rng(5);
  std::vector<int32_t> i32(10000);
  for (auto& v : i32) v = static_cast<int32_t>(rng()) % 100000;
  DeviceColumn c = Upload(i32);
  const auto sorted = Download<int32_t>(backend_->Sort(c));
  auto expected = i32;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
  // Input untouched.
  EXPECT_EQ(Download<int32_t>(c), i32);

  std::vector<double> f64{2.5, -1.0, 0.0, 99.0, -7.5};
  const auto sorted_d = Download<double>(backend_->Sort(Upload(f64)));
  std::sort(f64.begin(), f64.end());
  EXPECT_EQ(sorted_d, f64);
}

TEST_P(BackendTest, SortByKeyReordersValues) {
  const std::vector<int32_t> keys{30, 10, 20};
  const std::vector<double> vals{3.0, 1.0, 2.0};
  auto [sk, sv] = backend_->SortByKey(Upload(keys), Upload(vals));
  EXPECT_EQ(Download<int32_t>(sk), (std::vector<int32_t>{10, 20, 30}));
  EXPECT_EQ(Download<double>(sv), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST_P(BackendTest, SortByKeyAllColumnTypeCombinations) {
  // Keys and values in every storage type pairing must stay associated.
  const std::vector<int32_t> k32{30, 10, 20};
  const std::vector<int64_t> k64{30, 10, 20};
  const std::vector<double> kf{30.0, 10.0, 20.0};
  const std::vector<int32_t> v32{3, 1, 2};
  const std::vector<int64_t> v64{3, 1, 2};
  const std::vector<double> vf{3.0, 1.0, 2.0};

  auto check = [&](const DeviceColumn& keys, const DeviceColumn& values) {
    auto [sk, sv] = backend_->SortByKey(keys, values);
    // After sorting, values must equal {1, 2, 3} in their own type.
    switch (sv.type()) {
      case DataType::kInt32:
        EXPECT_EQ(Download<int32_t>(sv), (std::vector<int32_t>{1, 2, 3}));
        break;
      case DataType::kInt64:
        EXPECT_EQ(Download<int64_t>(sv), (std::vector<int64_t>{1, 2, 3}));
        break;
      case DataType::kFloat64:
        EXPECT_EQ(Download<double>(sv), (std::vector<double>{1, 2, 3}));
        break;
      case DataType::kFloat32:
        EXPECT_EQ(Download<float>(sv), (std::vector<float>{1, 2, 3}));
        break;
    }
  };
  // ArrayFire's sort-by-key supports the value types its real API exposes
  // for this use (s32/u32/s64/f64 payloads); all combos below are in-range.
  check(Upload(k32), Upload(v32));
  check(Upload(k32), Upload(v64));
  check(Upload(k32), Upload(vf));
  check(Upload(k64), Upload(v32));
  check(Upload(k64), Upload(vf));
  check(Upload(kf), Upload(v32));
  check(Upload(kf), Upload(vf));
}

TEST_P(BackendTest, OperationsDoNotMutateInputs) {
  const std::vector<int32_t> keys{3, 1, 2};
  const std::vector<double> vals{0.3, 0.1, 0.2};
  DeviceColumn ck = Upload(keys), cv = Upload(vals);
  backend_->Sort(ck);
  backend_->SortByKey(ck, cv);
  backend_->GroupByAggregate(ck, cv, AggOp::kSum);
  backend_->Unique(ck);
  backend_->PrefixSum(ck);
  EXPECT_EQ(Download<int32_t>(ck), keys);
  EXPECT_EQ(Download<double>(cv), vals);
}

TEST_P(BackendTest, Float32ColumnsWorkAcrossOperators) {
  const std::vector<float> vals{2.5f, -1.0f, 4.0f, 0.5f};
  DeviceColumn col = Upload(vals);
  EXPECT_EQ(col.type(), DataType::kFloat32);

  const auto sel =
      backend_->Select(col, Predicate::Make("f", CompareOp::kGt, 0.0));
  EXPECT_EQ(SortedRowIds(sel), (std::vector<int32_t>{0, 2, 3}));

  EXPECT_DOUBLE_EQ(backend_->ReduceColumn(col, AggOp::kSum), 6.0);
  EXPECT_DOUBLE_EQ(backend_->ReduceColumn(col, AggOp::kMin), -1.0);

  const auto sorted = Download<float>(backend_->Sort(col));
  EXPECT_EQ(sorted, (std::vector<float>{-1.0f, 0.5f, 2.5f, 4.0f}));

  const auto product = Download<float>(backend_->Product(col, col));
  EXPECT_EQ(product, (std::vector<float>{6.25f, 1.0f, 16.0f, 0.25f}));

  const std::vector<int32_t> keys{1, 2, 1, 2};
  const auto grouped =
      backend_->GroupByAggregate(Upload(keys), col, AggOp::kSum);
  ASSERT_EQ(grouped.num_groups, 2u);
  const auto gk = Download<int32_t>(grouped.keys);
  const auto gv = Download<double>(grouped.aggregate);
  std::map<int32_t, double> m;
  for (size_t i = 0; i < 2; ++i) m[gk[i]] = gv[i];
  EXPECT_FLOAT_EQ(m[1], 6.5f);
  EXPECT_FLOAT_EQ(m[2], -0.5f);
}

TEST_P(BackendTest, PrefixSumIsExclusive) {
  const std::vector<int32_t> in{5, 3, 2, 7};
  const auto got = Download<int32_t>(backend_->PrefixSum(Upload(in)));
  EXPECT_EQ(got, (std::vector<int32_t>{0, 5, 8, 10}));
}

TEST_P(BackendTest, PrefixSumLargeMatchesReference) {
  std::mt19937 rng(13);
  std::vector<int64_t> in(30000);
  for (auto& v : in) v = static_cast<int64_t>(rng() % 100);
  const auto got = Download<int64_t>(backend_->PrefixSum(Upload(in)));
  int64_t acc = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(got[i], acc) << "at " << i;
    acc += in[i];
  }
}

TEST_P(BackendTest, GatherAndScatter) {
  const std::vector<double> src{10, 20, 30, 40};
  const std::vector<int32_t> idx{3, 1};
  const auto gathered =
      Download<double>(backend_->Gather(Upload(src), Upload(idx)));
  EXPECT_EQ(gathered, (std::vector<double>{40, 20}));

  const std::vector<double> vals{7.5, 8.5};
  const auto scattered =
      Download<double>(backend_->Scatter(Upload(vals), Upload(idx), 5));
  EXPECT_EQ(scattered, (std::vector<double>{0, 8.5, 0, 7.5, 0}));
}

TEST_P(BackendTest, ProductAndScalarArithmetic) {
  const std::vector<double> a{1.5, 2.0, -3.0};
  const std::vector<double> b{2.0, 0.5, 4.0};
  EXPECT_EQ(Download<double>(backend_->Product(Upload(a), Upload(b))),
            (std::vector<double>{3.0, 1.0, -12.0}));
  EXPECT_EQ(Download<double>(backend_->AddScalar(Upload(a), 1.0)),
            (std::vector<double>{2.5, 3.0, -2.0}));
  EXPECT_EQ(Download<double>(backend_->SubtractFromScalar(1.0, Upload(a))),
            (std::vector<double>{-0.5, -1.0, 4.0}));
}

TEST_P(BackendTest, ProductOnIntColumns) {
  const std::vector<int32_t> a{2, 3};
  const std::vector<int32_t> b{10, -1};
  EXPECT_EQ(Download<int32_t>(backend_->Product(Upload(a), Upload(b))),
            (std::vector<int32_t>{20, -3}));
}

TEST_P(BackendTest, RealizationConsistentWithBehaviour) {
  // Table II invariants: no library supports merge join; hash join only in
  // the handwritten backend; everything else has at least partial support.
  EXPECT_EQ(backend_->Realization(core::DbOperator::kMergeJoin).level,
            core::SupportLevel::kNone);
  const auto hash = backend_->Realization(core::DbOperator::kHashJoin);
  if (GetParam() == backends::kHandwritten) {
    EXPECT_EQ(hash.level, core::SupportLevel::kFull);
  } else {
    EXPECT_EQ(hash.level, core::SupportLevel::kNone);
  }
  for (const auto op :
       {core::DbOperator::kSelection, core::DbOperator::kSort,
        core::DbOperator::kGroupedAggregation, core::DbOperator::kReduction,
        core::DbOperator::kPrefixSum, core::DbOperator::kProduct}) {
    EXPECT_NE(backend_->Realization(op).level, core::SupportLevel::kNone)
        << core::DbOperatorName(op);
  }
}

TEST_P(BackendTest, StreamAdvancesWithWork) {
  DeviceColumn c = Upload(std::vector<int32_t>(10000, 1));
  const uint64_t before = backend_->stream().now_ns();
  backend_->Sort(c);
  EXPECT_GT(backend_->stream().now_ns(), before);
}

}  // namespace
