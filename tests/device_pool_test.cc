// Tests for the caching device-memory pool (size classes, reuse, OOM
// behavior, ownership tracking, thread safety).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/device.h"

namespace gpusim {
namespace {

TEST(DevicePoolTest, PoolBlockBytesRoundsToSizeClasses) {
  EXPECT_EQ(Device::PoolBlockBytes(0), Device::kMinBlockBytes);
  EXPECT_EQ(Device::PoolBlockBytes(1), Device::kMinBlockBytes);
  EXPECT_EQ(Device::PoolBlockBytes(Device::kMinBlockBytes),
            Device::kMinBlockBytes);
  EXPECT_EQ(Device::PoolBlockBytes(Device::kMinBlockBytes + 1),
            2 * Device::kMinBlockBytes);
  EXPECT_EQ(Device::PoolBlockBytes(1000), 1024u);
  EXPECT_EQ(Device::PoolBlockBytes(1024), 1024u);
  EXPECT_EQ(Device::PoolBlockBytes(1025), 2048u);
  EXPECT_EQ(Device::PoolBlockBytes(Device::kLargeBlockBytes),
            Device::kLargeBlockBytes);
  // Above the largest class, blocks are cached by exact size.
  EXPECT_EQ(Device::PoolBlockBytes(Device::kLargeBlockBytes + 1),
            Device::kLargeBlockBytes + 1);
}

TEST(DevicePoolTest, FreeParksBlockAndAllocateReusesIt) {
  Device device;
  void* a = device.Allocate(1000);  // 1024-byte class
  device.Free(a);
  EXPECT_EQ(device.bytes_pooled(), 1024u);
  EXPECT_EQ(device.bytes_in_use(), 0u);
  // A request in the same class is served by the exact same block.
  void* b = device.Allocate(600);
  EXPECT_EQ(b, a);
  EXPECT_EQ(device.bytes_pooled(), 0u);
  EXPECT_EQ(device.bytes_in_use(), 1024u);
  device.Free(b);
}

TEST(DevicePoolTest, HitAndMissCountersTrackReuse) {
  Device device;
  const auto before = device.Snapshot();
  void* a = device.Allocate(4096);
  device.Free(a);
  void* b = device.Allocate(4096);  // hit
  void* c = device.Allocate(4096);  // miss: the only cached block is live
  const auto delta = device.Snapshot().Delta(before);
  EXPECT_EQ(delta.pool_hits, 1u);
  EXPECT_EQ(delta.pool_misses, 2u);
  EXPECT_EQ(delta.allocations, 3u);  // hits still count as allocations
  device.Free(b);
  device.Free(c);
}

TEST(DevicePoolTest, ReuseAcrossManyAllocFreeCycles) {
  Device device;
  const auto before = device.Snapshot();
  for (int i = 0; i < 100; ++i) {
    void* p = device.Allocate(1 << 16);
    device.Free(p);
  }
  const auto delta = device.Snapshot().Delta(before);
  EXPECT_EQ(delta.pool_misses, 1u);  // only the first cycle touches malloc
  EXPECT_EQ(delta.pool_hits, 99u);
  EXPECT_EQ(device.bytes_in_use(), 0u);
  EXPECT_EQ(device.bytes_pooled(), size_t{1} << 16);
}

TEST(DevicePoolTest, LargeBlocksCachedByExactSize) {
  Device device;
  const size_t big = Device::kLargeBlockBytes + 4096;
  void* a = device.Allocate(big);
  device.Free(a);
  // A different large size does not match the cached block.
  void* b = device.Allocate(big + 4096);
  EXPECT_NE(b, a);
  // The exact size does.
  void* c = device.Allocate(big);
  EXPECT_EQ(c, a);
  device.Free(b);
  device.Free(c);
}

TEST(DevicePoolTest, OwnsPointerFalseWhilePooled) {
  Device device;
  void* a = device.Allocate(512);
  EXPECT_TRUE(device.OwnsPointer(a));
  device.Free(a);
  EXPECT_FALSE(device.OwnsPointer(a));  // parked in the pool, not live
  void* b = device.Allocate(512);
  EXPECT_EQ(b, a);
  EXPECT_TRUE(device.OwnsPointer(b));
  device.Free(b);
}

TEST(DevicePoolTest, DoubleFreeThrows) {
  Device device;
  void* a = device.Allocate(256);
  device.Free(a);
  EXPECT_THROW(device.Free(a), std::invalid_argument);
}

TEST(DevicePoolTest, DoubleFreeIsDistinguishedFromUnknownPointer) {
  Device device;
  void* a = device.Allocate(256);
  device.Free(a);
  // A pointer still parked in the pool is a double free, not a foreign
  // pointer — the two bugs get distinct messages.
  try {
    device.Free(a);
    FAIL() << "double free did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("double free"), std::string::npos)
        << e.what();
  }
  int local = 0;
  try {
    device.Free(&local);
    FAIL() << "foreign free did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown pointer"),
              std::string::npos)
        << e.what();
  }
}

TEST(DevicePoolTest, ReallocatedBlockFreesCleanlyAgain) {
  Device device;
  void* a = device.Allocate(256);
  device.Free(a);
  // Reusing the parked block clears its double-free marker: the second
  // lifetime must free without complaint.
  void* b = device.Allocate(256);
  EXPECT_EQ(a, b);
  device.Free(b);
  EXPECT_THROW(device.Free(b), std::invalid_argument);
}

TEST(DevicePoolTest, TrimmedPointerReportsUnknownNotDoubleFree) {
  Device device;
  void* a = device.Allocate(256);
  device.Free(a);
  device.TrimPool();
  // After the trim the block is returned to the host allocator; freeing it
  // again is indistinguishable from a foreign pointer.
  try {
    device.Free(a);
    FAIL() << "free after trim did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown pointer"),
              std::string::npos)
        << e.what();
  }
}

TEST(DevicePoolTest, PooledBytesCountAgainstCapacity) {
  DeviceProperties props;
  props.global_memory_bytes = 1 << 20;  // 1 MiB device
  Device device(props);
  void* a = device.Allocate(512 * 1024);
  device.Free(a);
  EXPECT_EQ(device.bytes_pooled(), 512u * 1024u);
  // A full-capacity request only fits if the pool is released first; the
  // allocator trims automatically instead of throwing.
  void* b = device.Allocate(1 << 20);
  EXPECT_EQ(device.bytes_pooled(), 0u);
  EXPECT_EQ(device.bytes_in_use(), 1u << 20);
  // Now the device really is full: live + new block exceeds capacity.
  EXPECT_THROW(device.Allocate(1), OutOfDeviceMemory);
  device.Free(b);
}

TEST(DevicePoolTest, OomAccountsReservedBlockBytes) {
  DeviceProperties props;
  props.global_memory_bytes = 1 << 20;
  Device device(props);
  // 900 KiB reserves a 1 MiB block: the device is now full.
  void* a = device.Allocate(900 * 1024);
  EXPECT_EQ(device.bytes_in_use(), 1u << 20);
  EXPECT_THROW(device.Allocate(1), OutOfDeviceMemory);
  device.Free(a);
}

TEST(DevicePoolTest, TrimPoolReleasesCachedBlocks) {
  Device device;
  void* a = device.Allocate(4096);
  void* b = device.Allocate(Device::kLargeBlockBytes + 1);
  device.Free(a);
  device.Free(b);
  EXPECT_GT(device.bytes_pooled(), 0u);
  device.TrimPool();
  EXPECT_EQ(device.bytes_pooled(), 0u);
  EXPECT_EQ(device.bytes_in_use(), 0u);
}

TEST(DeviceReservationTest, ReserveCountsAgainstCapacity) {
  DeviceProperties props;
  props.global_memory_bytes = 1 << 20;  // 1 MiB device
  Device device(props);
  EXPECT_TRUE(device.TryReserve(/*stream_id=*/7, 600 * 1024));
  EXPECT_EQ(device.reserved_bytes(), 600u * 1024u);
  EXPECT_EQ(device.committed_bytes(), 600u * 1024u);
  EXPECT_EQ(device.ReservationRemaining(7), 600u * 1024u);
  // A second reservation that would overshoot capacity is refused...
  EXPECT_FALSE(device.TryReserve(/*stream_id=*/8, 600 * 1024));
  // ...but one that fits in the remainder is admitted and accumulates.
  EXPECT_TRUE(device.TryReserve(/*stream_id=*/8, 300 * 1024));
  EXPECT_EQ(device.reserved_bytes(), 900u * 1024u);
  device.ReleaseReservation(7);
  EXPECT_EQ(device.ReservationRemaining(7), 0u);
  EXPECT_EQ(device.reserved_bytes(), 300u * 1024u);
  device.ReleaseReservation(8);
  EXPECT_EQ(device.committed_bytes(), 0u);
}

TEST(DeviceReservationTest, ReserveTrimsPoolToMakeRoom) {
  DeviceProperties props;
  props.global_memory_bytes = 1 << 20;
  Device device(props);
  void* a = device.Allocate(768 * 1024);
  device.Free(a);  // parked: pooled bytes count against capacity
  EXPECT_GT(device.bytes_pooled(), 0u);
  // The reservation only fits if the pool is released first.
  EXPECT_TRUE(device.TryReserve(1, 512 * 1024));
  EXPECT_EQ(device.bytes_pooled(), 0u);
  device.ReleaseReservation(1);
}

TEST(DeviceReservationTest, ScopeConvertsReservedBytesToLive) {
  DeviceProperties props;
  props.global_memory_bytes = 1 << 20;
  Device device(props);
  ASSERT_TRUE(device.TryReserve(/*stream_id=*/3, 512 * 1024));
  {
    Device::ReservationScope scope(device, 3);
    void* p = device.Allocate(100 * 1024);  // rounds to a 128 KiB block
    // The allocation drew from the reservation, not fresh capacity:
    // committed bytes are unchanged, the balance shrank by the block size.
    EXPECT_EQ(device.committed_bytes(), 512u * 1024u);
    EXPECT_EQ(device.ReservationRemaining(3), (512 - 128) * 1024u);
    // Freeing a reservation-backed block credits the balance back instead
    // of parking the block in the pool.
    device.Free(p);
    EXPECT_EQ(device.ReservationRemaining(3), 512u * 1024u);
    EXPECT_EQ(device.bytes_pooled(), 0u);
  }
  device.ReleaseReservation(3);
  EXPECT_EQ(device.committed_bytes(), 0u);
}

TEST(DeviceReservationTest, BackedFreeAfterReleaseReturnsCapacity) {
  DeviceProperties props;
  props.global_memory_bytes = 1 << 20;
  Device device(props);
  ASSERT_TRUE(device.TryReserve(5, 512 * 1024));
  void* p = nullptr;
  {
    Device::ReservationScope scope(device, 5);
    p = device.Allocate(256 * 1024);
  }
  // The query's reservation is released while one of its blocks is still
  // live; the late Free must return capacity (the reservation is inactive,
  // so there is no balance to credit).
  device.ReleaseReservation(5);
  EXPECT_EQ(device.committed_bytes(), 256u * 1024u);
  device.Free(p);
  EXPECT_EQ(device.committed_bytes(), 0u);
  EXPECT_EQ(device.reserved_bytes(), 0u);
}

TEST(DeviceReservationTest, PeakBytesTracksHighWater) {
  DeviceProperties props;
  props.global_memory_bytes = 1 << 20;
  Device device(props);
  EXPECT_EQ(device.peak_bytes(), 0u);
  ASSERT_TRUE(device.TryReserve(1, 256 * 1024));
  void* p = device.Allocate(128 * 1024);
  const uint64_t high = device.peak_bytes();
  EXPECT_GE(high, (256u + 128u) * 1024u);
  device.Free(p);
  device.ReleaseReservation(1);
  // The high-water mark never recedes.
  EXPECT_EQ(device.peak_bytes(), high);
}

// Satellite regression: threads racing Reserve / reservation-backed Allocate
// / Free / TrimPool must never drive committed bytes past capacity, and the
// books must balance once everything is released.
TEST(DeviceReservationTest, ConcurrentReservationAccountingStress) {
  DeviceProperties props;
  props.global_memory_bytes = 4 << 20;  // 4 MiB: forces admission conflicts
  Device device(props);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  const size_t capacity = device.memory_capacity();
  std::atomic<bool> overshoot{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t stream_id = 100 + static_cast<uint64_t>(t);
      uint32_t rng = 0x9e3779b9u * static_cast<uint32_t>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        rng = rng * 1664525u + 1013904223u;
        const size_t want = 4096 + (rng % (256 * 1024));
        if (!device.TryReserve(stream_id, want)) {
          if ((rng >> 8) % 4 == 0) device.TrimPool();
          continue;
        }
        {
          Device::ReservationScope scope(device, stream_id);
          void* p = nullptr;
          try {
            p = device.Allocate(want / 2);
          } catch (const OutOfDeviceMemory&) {
            // Unbacked fallback can legitimately lose an admission race.
          }
          if (device.committed_bytes() > capacity) overshoot.store(true);
          if (p != nullptr) device.Free(p);
        }
        device.ReleaseReservation(stream_id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overshoot.load());
  EXPECT_EQ(device.bytes_in_use(), 0u);
  EXPECT_EQ(device.reserved_bytes(), 0u);
  device.TrimPool();
  EXPECT_EQ(device.committed_bytes(), 0u);
}

TEST(DevicePoolTest, MultithreadedAllocFreeStress) {
  Device device;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<void*> live;
      uint32_t rng = 0x9e3779b9u * static_cast<uint32_t>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        rng = rng * 1664525u + 1013904223u;
        const size_t bytes = 64 + (rng % (64 * 1024));
        void* p = device.Allocate(bytes);
        if (p == nullptr || !device.OwnsPointer(p)) failed.store(true);
        live.push_back(p);
        if (live.size() > 8 || (rng & 1)) {
          device.Free(live.back());
          live.pop_back();
        }
      }
      for (void* p : live) device.Free(p);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(device.bytes_in_use(), 0u);
  const auto snap = device.Snapshot();
  EXPECT_EQ(snap.pool_hits + snap.pool_misses, snap.allocations);
}

}  // namespace
}  // namespace gpusim
