// Plan IR, optimizer, and executor tests.
//
// Covers the optimizer's rewrite rules (filter-chain merging, fusion,
// join-algorithm selection), deterministic cost-based dispatch, and the two
// golden properties the subsystem promises: a plan pinned to one backend
// reproduces the hand-coded query's answer AND charges a bit-identical
// simulated timeline, and the hybrid plan is never slower than the best
// single backend (strictly faster on a join query).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/resilience.h"
#include "core/scheduler.h"
#include "gpusim/device.h"
#include "gpusim/fault.h"
#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/tpch_plans.h"
#include "storage/device_column.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

class PlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::RegisterBuiltinBackends();
    tpch::Config config;
    config.scale_factor = 0.01;
    setup_ = new gpusim::Stream(gpusim::Device::Default(),
                                gpusim::ApiProfile::Cuda());
    lineitem_ = new storage::DeviceTable(
        storage::UploadTable(*setup_, tpch::GenerateLineitem(config)));
    orders_ = new storage::DeviceTable(
        storage::UploadTable(*setup_, tpch::GenerateOrders(config)));
    customer_ = new storage::DeviceTable(
        storage::UploadTable(*setup_, tpch::GenerateCustomer(config)));
    part_ = new storage::DeviceTable(
        storage::UploadTable(*setup_, tpch::GeneratePart(config)));
  }

  static void TearDownTestSuite() {
    delete lineitem_;
    delete orders_;
    delete customer_;
    delete part_;
    delete setup_;
    lineitem_ = orders_ = customer_ = part_ = nullptr;
    setup_ = nullptr;
  }

  static size_t LiveCount(const plan::Plan& p, plan::NodeKind kind) {
    size_t n = 0;
    for (const plan::PlanNode& node : p.nodes) {
      if (!node.dead && node.kind == kind) ++n;
    }
    return n;
  }

  static const plan::PlanNode* FirstLive(const plan::Plan& p,
                                         plan::NodeKind kind) {
    for (const plan::PlanNode& node : p.nodes) {
      if (!node.dead && node.kind == kind) return &node;
    }
    return nullptr;
  }

  static gpusim::Stream* setup_;
  static storage::DeviceTable* lineitem_;
  static storage::DeviceTable* orders_;
  static storage::DeviceTable* customer_;
  static storage::DeviceTable* part_;
};

gpusim::Stream* PlanTest::setup_ = nullptr;
storage::DeviceTable* PlanTest::lineitem_ = nullptr;
storage::DeviceTable* PlanTest::orders_ = nullptr;
storage::DeviceTable* PlanTest::customer_ = nullptr;
storage::DeviceTable* PlanTest::part_ = nullptr;

// ---------------------------------------------------------------------------
// Rewrite rules
// ---------------------------------------------------------------------------

TEST_F(PlanTest, FilterChainMergesIntoOneConjunctiveNode) {
  // Q6's five single-predicate sigmas must fold into ONE conjunctive
  // selection with the predicates in chain order.
  const plan::QueryPlanBundle bundle = plan::BuildQ6Plan(*lineitem_);
  plan::OptimizerOptions opts;
  opts.pin_backend = "Thrust";
  const plan::PhysicalPlan phys = plan::Optimize(bundle.plan, opts);

  EXPECT_EQ(LiveCount(phys.plan, plan::NodeKind::kFilter), 1u);
  const plan::PlanNode* filter = FirstLive(phys.plan, plan::NodeKind::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_TRUE(filter->conjunctive);
  ASSERT_EQ(filter->preds.size(), 5u);
  EXPECT_EQ(filter->preds[0].column, "l_shipdate");
  EXPECT_EQ(filter->preds[1].column, "l_shipdate");
  EXPECT_EQ(filter->preds[2].column, "l_discount");
  EXPECT_EQ(filter->preds[3].column, "l_discount");
  EXPECT_EQ(filter->preds[4].column, "l_quantity");
  EXPECT_EQ(filter->filter_source, -1);
}

TEST_F(PlanTest, DisjunctiveChainIsNotMergedAndExecutorRefusesIt) {
  plan::Plan p;
  const int scan =
      p.Scan("lineitem", "l_quantity", lineitem_->column("l_quantity"));
  const int f1 =
      p.Filter({scan, plan::Part::kValue},
               core::Predicate::Make("l_quantity", core::CompareOp::kLt, 24.0));
  const int f2 =
      p.Filter({scan, plan::Part::kValue},
               core::Predicate::Make("l_quantity", core::CompareOp::kGe, 1.0),
               /*source=*/f1);
  p.nodes[f2].conjunctive = false;  // an OR-refinement cannot be folded

  plan::OptimizerOptions opts;
  opts.pin_backend = "Thrust";
  const plan::PhysicalPlan phys = plan::Optimize(p, opts);
  EXPECT_EQ(LiveCount(phys.plan, plan::NodeKind::kFilter), 2u);

  auto backend = core::BackendRegistry::Instance().Create("Thrust");
  EXPECT_THROW(plan::RunPinned(phys, *backend), std::logic_error);
}

TEST_F(PlanTest, JoinAlgoFollowsBackendCapability) {
  const plan::QueryPlanBundle bundle =
      plan::BuildQ14Plan(*part_, *lineitem_);

  plan::OptimizerOptions thrust_pin;
  thrust_pin.pin_backend = "Thrust";
  const plan::PhysicalPlan on_thrust = plan::Optimize(bundle.plan, thrust_pin);
  const plan::PlanNode* join = FirstLive(on_thrust.plan, plan::NodeKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_algo, plan::JoinAlgo::kNestedLoops);

  plan::OptimizerOptions hw_pin;
  hw_pin.pin_backend = "Handwritten";
  const plan::PhysicalPlan on_hw = plan::Optimize(bundle.plan, hw_pin);
  join = FirstLive(on_hw.plan, plan::NodeKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_algo, plan::JoinAlgo::kHash);

  // Hybrid dispatch must route the join to a hash-capable backend.
  const plan::PhysicalPlan hybrid =
      plan::Optimize(bundle.plan, plan::OptimizerOptions());
  for (size_t i = 0; i < hybrid.plan.nodes.size(); ++i) {
    const plan::PlanNode& node = hybrid.plan.nodes[i];
    if (node.dead || node.kind != plan::NodeKind::kJoin) continue;
    if (node.join_algo == plan::JoinAlgo::kHash) {
      EXPECT_EQ(hybrid.node_backend[i], "Handwritten");
    }
  }
}

TEST_F(PlanTest, FusionOnlyInHybridPlans) {
  // Q6 hybrid collapses filter+gather+product+sum into one fused pass.
  const plan::QueryPlanBundle q6 = plan::BuildQ6Plan(*lineitem_);
  const plan::PhysicalPlan q6_hybrid =
      plan::Optimize(q6.plan, plan::OptimizerOptions());
  EXPECT_EQ(LiveCount(q6_hybrid.plan, plan::NodeKind::kFusedFilterSum), 1u);

  plan::OptimizerOptions pin;
  pin.pin_backend = "Thrust";
  const plan::PhysicalPlan q6_pinned = plan::Optimize(q6.plan, pin);
  EXPECT_EQ(LiveCount(q6_pinned.plan, plan::NodeKind::kFusedFilterSum), 0u);
  EXPECT_EQ(LiveCount(q6_pinned.plan, plan::NodeKind::kFusedMap), 0u);

  // Q1's disc_price and charge expressions each fuse into one kernel.
  const plan::QueryPlanBundle q1 = plan::BuildQ1Plan(*lineitem_);
  const plan::PhysicalPlan q1_hybrid =
      plan::Optimize(q1.plan, plan::OptimizerOptions());
  EXPECT_EQ(LiveCount(q1_hybrid.plan, plan::NodeKind::kFusedMap), 2u);

  // Q4 has no fusible chain (no arithmetic feeding a reduction).
  const plan::QueryPlanBundle q4 = plan::BuildQ4Plan(*orders_, *lineitem_);
  const plan::PhysicalPlan q4_hybrid =
      plan::Optimize(q4.plan, plan::OptimizerOptions());
  EXPECT_EQ(LiveCount(q4_hybrid.plan, plan::NodeKind::kFusedFilterSum), 0u);
  EXPECT_EQ(LiveCount(q4_hybrid.plan, plan::NodeKind::kFusedMap), 0u);
}

TEST_F(PlanTest, DispatchIsDeterministic) {
  const plan::QueryPlanBundle bundle =
      plan::BuildQ3Plan(*customer_, *orders_, *lineitem_);
  const plan::PhysicalPlan a =
      plan::Optimize(bundle.plan, plan::OptimizerOptions());
  const plan::PhysicalPlan b =
      plan::Optimize(bundle.plan, plan::OptimizerOptions());
  EXPECT_EQ(a.node_backend, b.node_backend);
  EXPECT_EQ(a.est_ns, b.est_ns);
  EXPECT_EQ(a.est_rows, b.est_rows);
}

TEST_F(PlanTest, UnknownBackendNameThrows) {
  const plan::QueryPlanBundle bundle = plan::BuildQ6Plan(*lineitem_);
  plan::OptimizerOptions opts;
  opts.pin_backend = "NoSuchBackend";
  EXPECT_THROW(plan::Optimize(bundle.plan, opts), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Golden equivalence: pinned plans replay the hand-coded queries
// ---------------------------------------------------------------------------

void ExpectNear(double actual, double expected) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-9 + 1e-6);
}

void ExpectQ1Equal(const std::vector<tpch::Q1Row>& actual,
                   const std::vector<tpch::Q1Row>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].returnflag, expected[i].returnflag);
    EXPECT_EQ(actual[i].linestatus, expected[i].linestatus);
    EXPECT_EQ(actual[i].count_order, expected[i].count_order);
    ExpectNear(actual[i].sum_qty, expected[i].sum_qty);
    ExpectNear(actual[i].sum_base_price, expected[i].sum_base_price);
    ExpectNear(actual[i].sum_disc_price, expected[i].sum_disc_price);
    ExpectNear(actual[i].sum_charge, expected[i].sum_charge);
    ExpectNear(actual[i].avg_qty, expected[i].avg_qty);
    ExpectNear(actual[i].avg_price, expected[i].avg_price);
    ExpectNear(actual[i].avg_disc, expected[i].avg_disc);
  }
}

void ExpectQ3Equal(const std::vector<tpch::Q3Row>& actual,
                   const std::vector<tpch::Q3Row>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].orderkey, expected[i].orderkey);
    ExpectNear(actual[i].revenue, expected[i].revenue);
  }
}

void ExpectQ4Equal(const std::vector<tpch::Q4Row>& actual,
                   const std::vector<tpch::Q4Row>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].orderpriority, expected[i].orderpriority);
    EXPECT_EQ(actual[i].order_count, expected[i].order_count);
  }
}

class PlanGoldenTest : public PlanTest,
                       public ::testing::WithParamInterface<const char*> {};

TEST_P(PlanGoldenTest, PinnedPlanReproducesHandCodedResultsAndTimeline) {
  const std::string backend_name = GetParam();
  auto& registry = core::BackendRegistry::Instance();

  const auto check = [&](const plan::QueryPlanBundle& bundle,
                         const char* query,
                         const auto& run_hand, const auto& compare) {
    SCOPED_TRACE(query);
    auto hand_backend = registry.Create(backend_name);
    const uint64_t t0 = hand_backend->stream().now_ns();
    const auto expected = run_hand(*hand_backend);
    const uint64_t hand_ns = hand_backend->stream().now_ns() - t0;

    plan::OptimizerOptions opts;
    opts.pin_backend = backend_name;
    const plan::PhysicalPlan phys = plan::Optimize(bundle.plan, opts);
    auto plan_backend = registry.Create(backend_name);
    const plan::ExecutionResult res = plan::RunPinned(phys, *plan_backend);

    compare(bundle, res, expected);
    // The golden timing property: bit-identical simulated time, not just
    // "close".
    EXPECT_EQ(res.total_ns, hand_ns);
  };

  check(plan::BuildQ1Plan(*lineitem_), "q1",
        [&](core::Backend& b) { return tpch::RunQ1(b, *lineitem_); },
        [](const plan::QueryPlanBundle& bundle,
           const plan::ExecutionResult& res,
           const std::vector<tpch::Q1Row>& expected) {
          ExpectQ1Equal(plan::ExtractQ1(bundle, res), expected);
        });
  check(plan::BuildQ6Plan(*lineitem_), "q6",
        [&](core::Backend& b) { return tpch::RunQ6(b, *lineitem_); },
        [](const plan::QueryPlanBundle& bundle,
           const plan::ExecutionResult& res, double expected) {
          ExpectNear(plan::ExtractQ6(bundle, res), expected);
        });
  check(plan::BuildQ3Plan(*customer_, *orders_, *lineitem_), "q3",
        [&](core::Backend& b) {
          return tpch::RunQ3(b, *customer_, *orders_, *lineitem_);
        },
        [](const plan::QueryPlanBundle& bundle,
           const plan::ExecutionResult& res,
           const std::vector<tpch::Q3Row>& expected) {
          ExpectQ3Equal(plan::ExtractQ3(bundle, res, tpch::Q3Params()),
                        expected);
        });
  check(plan::BuildQ4Plan(*orders_, *lineitem_), "q4",
        [&](core::Backend& b) { return tpch::RunQ4(b, *orders_, *lineitem_); },
        [](const plan::QueryPlanBundle& bundle,
           const plan::ExecutionResult& res,
           const std::vector<tpch::Q4Row>& expected) {
          ExpectQ4Equal(plan::ExtractQ4(bundle, res), expected);
        });
  check(plan::BuildQ14Plan(*part_, *lineitem_), "q14",
        [&](core::Backend& b) { return tpch::RunQ14(b, *part_, *lineitem_); },
        [](const plan::QueryPlanBundle& bundle,
           const plan::ExecutionResult& res, double expected) {
          ExpectNear(plan::ExtractQ14(bundle, res), expected);
        });
}

INSTANTIATE_TEST_SUITE_P(Backends, PlanGoldenTest,
                         ::testing::Values("Thrust", "Handwritten"),
                         [](const auto& info) {
                           return std::string(info.param) == "Thrust"
                                      ? "Thrust"
                                      : "Handwritten";
                         });

// ---------------------------------------------------------------------------
// Hybrid dispatch
// ---------------------------------------------------------------------------

TEST_F(PlanTest, HybridIsNeverSlowerThanBestSingleBackend) {
  auto& registry = core::BackendRegistry::Instance();
  const std::vector<std::string> singles = {"Handwritten", "Thrust"};

  struct QueryCase {
    const char* name;
    plan::QueryPlanBundle bundle;
    bool join_query;
  };
  std::vector<QueryCase> cases;
  cases.push_back({"q1", plan::BuildQ1Plan(*lineitem_), false});
  cases.push_back({"q6", plan::BuildQ6Plan(*lineitem_), false});
  cases.push_back({"q4", plan::BuildQ4Plan(*orders_, *lineitem_), true});
  cases.push_back(
      {"q14", plan::BuildQ14Plan(*part_, *lineitem_), true});

  bool join_strict_win = false;
  for (const QueryCase& c : cases) {
    SCOPED_TRACE(c.name);
    uint64_t best = UINT64_MAX;
    for (const std::string& name : singles) {
      plan::OptimizerOptions opts;
      opts.pin_backend = name;
      const plan::PhysicalPlan phys = plan::Optimize(c.bundle.plan, opts);
      auto backend = registry.Create(name);
      best = std::min(best, plan::RunPinned(phys, *backend).total_ns);
    }
    const plan::PhysicalPlan hybrid =
        plan::Optimize(c.bundle.plan, plan::OptimizerOptions());
    const uint64_t hybrid_ns = plan::RunHybrid(hybrid).total_ns;
    EXPECT_LE(hybrid_ns, best);
    if (c.join_query && hybrid_ns < best) join_strict_win = true;
  }
  EXPECT_TRUE(join_strict_win)
      << "hybrid should beat the best single backend outright on at least "
         "one join query";
}

TEST_F(PlanTest, HybridQ6MatchesReferenceAnswer) {
  const plan::QueryPlanBundle bundle = plan::BuildQ6Plan(*lineitem_);
  const plan::PhysicalPlan phys =
      plan::Optimize(bundle.plan, plan::OptimizerOptions());
  EXPECT_TRUE(phys.hybrid);
  const plan::ExecutionResult res = plan::RunHybrid(phys);

  auto backend = core::BackendRegistry::Instance().Create("Handwritten");
  ExpectNear(plan::ExtractQ6(bundle, res), tpch::RunQ6(*backend, *lineitem_));
}

TEST_F(PlanTest, HybridQ3MatchesReferenceAnswer) {
  const plan::QueryPlanBundle bundle =
      plan::BuildQ3Plan(*customer_, *orders_, *lineitem_);
  const plan::ExecutionResult res =
      plan::RunHybrid(plan::Optimize(bundle.plan, plan::OptimizerOptions()));

  auto backend = core::BackendRegistry::Instance().Create("Handwritten");
  ExpectQ3Equal(plan::ExtractQ3(bundle, res, tpch::Q3Params()),
                tpch::RunQ3(*backend, *customer_, *orders_, *lineitem_));
}

// ---------------------------------------------------------------------------
// Scheduler integration
// ---------------------------------------------------------------------------

TEST_F(PlanTest, PlanQueryRunsThroughScheduler) {
  const plan::QueryPlanBundle bundle = plan::BuildQ6Plan(*lineitem_);
  plan::OptimizerOptions opts;
  opts.pin_backend = "Thrust";
  auto phys = std::make_shared<const plan::PhysicalPlan>(
      plan::Optimize(bundle.plan, opts));

  auto backend = core::BackendRegistry::Instance().Create("Thrust");
  const uint64_t direct_ns = plan::RunPinned(*phys, *backend).total_ns;

  core::SchedulerOptions sched_opts;
  sched_opts.backend_name = "Thrust";
  sched_opts.num_clients = 2;
  core::QueryScheduler scheduler(sched_opts);
  for (int i = 0; i < 4; ++i) {
    scheduler.Submit("plan/q6", plan::MakePlanQuery(phys));
  }
  scheduler.Drain();

  const auto& records = scheduler.Records();
  ASSERT_EQ(records.size(), 4u);
  for (const core::QueryRecord& r : records) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.simulated_ns, direct_ns);
  }
}

// ---------------------------------------------------------------------------
// Resilience: fallback execution and breaker-aware re-planning
// ---------------------------------------------------------------------------

/// Detaches the injector and clears global breaker state on every exit path
/// so a failing assertion cannot poison the other plan tests.
class PlanResilienceTest : public PlanTest {
 protected:
  void SetUp() override {
    gpusim::Device::Default().set_fault_injector(nullptr);
    core::ResilienceManager::Global().Reset();
  }
  void TearDown() override {
    gpusim::Device::Default().set_fault_injector(nullptr);
    core::ResilienceManager::Global().Reset();
  }
};

TEST_F(PlanResilienceTest, ExecutorFallsBackWhenABackendDiesMidPlan) {
  const plan::QueryPlanBundle bundle = plan::BuildQ6Plan(*lineitem_);
  const plan::PhysicalPlan phys =
      plan::Optimize(bundle.plan, plan::OptimizerOptions());
  ASSERT_TRUE(phys.hybrid);
  ASSERT_FALSE(phys.candidates.empty());

  // Expected answer, computed before any fault is armed.
  auto reference = core::BackendRegistry::Instance().Create("Handwritten");
  const double expected = tpch::RunQ6(*reference, *lineitem_);

  // Kill the dominant backend: every node dispatched there loses its device
  // on the first kernel and must fall back to the next candidate.
  gpusim::FaultInjector injector(17);
  gpusim::FaultRule rule;
  rule.site = gpusim::FaultSite::kKernel;
  rule.kind = gpusim::FaultKind::kDeviceLost;
  rule.stream_label = "Handwritten";
  rule.at_call = 1;
  injector.AddRule(rule);
  gpusim::Device::Default().set_fault_injector(&injector);

  // Three runs: enough fatal failures to trip the default breaker.
  for (int round = 0; round < 3; ++round) {
    const plan::ExecutionResult res = plan::RunHybrid(phys);
    ExpectNear(plan::ExtractQ6(bundle, res), expected);
  }
  gpusim::Device::Default().set_fault_injector(nullptr);

  core::ResilienceManager& rm = core::ResilienceManager::Global();
  const core::ResilienceStats stats = rm.Snapshot();
  EXPECT_GT(injector.stats().injected_device_lost, 0u);
  EXPECT_GE(stats.fallback_reroutes, 3u);
  EXPECT_EQ(rm.StateOf("Handwritten"), core::CircuitBreaker::State::kOpen);

  // Re-optimizing now routes around the open breaker: no node is assigned
  // to the dead backend, and the plan still answers correctly.
  const plan::PhysicalPlan rerouted =
      plan::Optimize(bundle.plan, plan::OptimizerOptions());
  for (const std::string& b : rerouted.node_backend) {
    EXPECT_NE(b, "Handwritten");
  }
  ExpectNear(plan::ExtractQ6(bundle, plan::RunHybrid(rerouted)), expected);

  // Opting out of breaker-aware dispatch restores the original assignment.
  plan::OptimizerOptions ignore;
  ignore.route_around_open_breakers = false;
  const plan::PhysicalPlan original = plan::Optimize(bundle.plan, ignore);
  EXPECT_EQ(original.node_backend, phys.node_backend);
}

TEST_F(PlanResilienceTest, AdaptivePlanQueryReplansAroundOpenBreaker) {
  const plan::QueryPlanBundle bundle = plan::BuildQ6Plan(*lineitem_);
  auto logical = std::make_shared<const plan::Plan>(bundle.plan);

  // Open the dominant backend's breaker by hand: the adaptive query must
  // still succeed because each execution re-optimizes against breaker
  // state instead of replaying the stale assignment.
  core::ResilienceManager& rm = core::ResilienceManager::Global();
  for (int i = 0; i < 3; ++i) rm.RecordFailure("Handwritten");
  ASSERT_EQ(rm.StateOf("Handwritten"), core::CircuitBreaker::State::kOpen);

  core::SchedulerOptions sched_opts;
  sched_opts.backend_name = "Thrust";
  sched_opts.num_clients = 1;
  core::QueryScheduler scheduler(sched_opts);
  scheduler.Submit("adaptive/q6", plan::MakeAdaptivePlanQuery(logical));
  scheduler.Drain();

  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].ok) << records[0].error;
  EXPECT_GT(records[0].simulated_ns, 0u);
}

}  // namespace
