// Concurrency tests for the multi-submitter thread pool: many host threads
// dispatching jobs at once, per-job error isolation, nested dispatch, and
// the accounting invariants of the slot table. Built into the
// concurrency_tests binary, which CI also runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/fault.h"
#include "gpusim/thread_pool.h"

namespace gpusim {
namespace {

TEST(ThreadPoolTest, SingleSubmitterRunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  const size_t kChunks = 1000;
  std::vector<std::atomic<uint32_t>> hits(kChunks);
  pool.ParallelFor(kChunks, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kChunks; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "chunk " << i;
  }
}

TEST(ThreadPoolTest, ConcurrentSubmittersEachSeeTheirOwnJobComplete) {
  ThreadPool pool(4);
  const unsigned kSubmitters = 6;
  const int kJobsPerSubmitter = 50;
  const size_t kChunks = 64;

  std::vector<std::thread> submitters;
  std::vector<uint64_t> sums(kSubmitters, 0);
  for (unsigned s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      uint64_t total = 0;
      for (int j = 0; j < kJobsPerSubmitter; ++j) {
        std::vector<std::atomic<uint64_t>> cells(kChunks);
        pool.ParallelFor(kChunks, [&](size_t i) {
          cells[i].store(i + s, std::memory_order_relaxed);
        });
        // ParallelFor blocks until all chunks ran, so every cell is set.
        for (size_t i = 0; i < kChunks; ++i) {
          total += cells[i].load(std::memory_order_relaxed);
        }
      }
      sums[s] = total;
    });
  }
  for (auto& t : submitters) t.join();

  for (unsigned s = 0; s < kSubmitters; ++s) {
    const uint64_t per_job = kChunks * (kChunks - 1) / 2 +
                             static_cast<uint64_t>(s) * kChunks;
    EXPECT_EQ(sums[s], per_job * kJobsPerSubmitter) << "submitter " << s;
  }
}

TEST(ThreadPoolTest, ErrorsArePerJobAndDoNotLeakAcrossSubmitters) {
  ThreadPool pool(4);
  const int kRounds = 30;

  std::atomic<int> good_failures{0};
  std::thread good([&] {
    for (int j = 0; j < kRounds; ++j) {
      std::atomic<uint64_t> sum{0};
      try {
        pool.ParallelFor(32, [&](size_t i) {
          sum.fetch_add(i, std::memory_order_relaxed);
        });
      } catch (...) {
        good_failures.fetch_add(1);
      }
      EXPECT_EQ(sum.load(), 32u * 31u / 2);
    }
  });

  int caught = 0;
  for (int j = 0; j < kRounds; ++j) {
    try {
      pool.ParallelFor(32, [&](size_t i) {
        if (i == 7) throw std::runtime_error("chunk failure");
      });
    } catch (const std::runtime_error& e) {
      ++caught;
      EXPECT_STREQ(e.what(), "chunk failure");
    }
  }
  good.join();

  // Every throwing job reports to its own submitter; the clean submitter
  // never observes an exception.
  EXPECT_EQ(caught, kRounds);
  EXPECT_EQ(good_failures.load(), 0);
}

TEST(ThreadPoolTest, ConcurrentFaultingJobsKeepTypedErrorsIsolated) {
  // Many submitters throwing the gpusim fault taxonomy at once: each
  // submitter must catch exactly its own fault type on every round, never a
  // neighbor's — the per-slot error channel cannot cross wires even when
  // every job in flight is failing.
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kRounds = 25;
  std::atomic<int> wrong_type{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kRounds; ++j) {
        try {
          pool.ParallelFor(16, [&](size_t i) {
            if (i != 5) return;
            switch (t % 3) {
              case 0: throw TransientKernelFault("kernel " +
                                                 std::to_string(t));
              case 1: throw TransferFault("transfer " + std::to_string(t));
              default: throw DeviceLost("lost " + std::to_string(t));
            }
          });
          wrong_type.fetch_add(1);  // must not complete cleanly
        } catch (const TransientKernelFault& e) {
          if (t % 3 != 0 || std::string(e.what()) !=
                                "kernel " + std::to_string(t)) {
            wrong_type.fetch_add(1);
          }
        } catch (const TransferFault& e) {
          if (t % 3 != 1 || std::string(e.what()) !=
                                "transfer " + std::to_string(t)) {
            wrong_type.fetch_add(1);
          }
        } catch (const DeviceLost& e) {
          if (t % 3 != 2 ||
              std::string(e.what()) != "lost " + std::to_string(t)) {
            wrong_type.fetch_add(1);
          }
        } catch (...) {
          wrong_type.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(wrong_type.load(), 0);

  // The pool stays serviceable after the fault storm.
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(64, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64u * 63u / 2);
}

TEST(ThreadPoolTest, NestedDispatchFromAChunkBodyCompletes) {
  // The single-slot pool of PR 1 would self-deadlock here: the inner
  // ParallelFor would block on the launch mutex held across the outer job.
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(8, [&](size_t outer) {
    pool.ParallelFor(16, [&](size_t inner) {
      sum.fetch_add(outer * 16 + inner, std::memory_order_relaxed);
    });
  });
  const uint64_t n = 8 * 16;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolTest, ManySubmittersBeyondSlotTableStillCorrect) {
  // More concurrent submitters than job slots: overflowing dispatches run
  // inline. Correctness must not depend on which path a job took.
  ThreadPool pool(2);
  const unsigned kSubmitters = ThreadPool::kNumSlots + 8;
  std::vector<std::thread> submitters;
  std::vector<uint64_t> sums(kSubmitters, 0);
  for (unsigned s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 5; ++round) {
        std::atomic<uint64_t> sum{0};
        pool.ParallelFor(24, [&](size_t i) {
          sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        sums[s] += sum.load();
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (unsigned s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(sums[s], 5u * (24u * 25u / 2)) << "submitter " << s;
  }
}

TEST(ThreadPoolTest, StatsAccountForEveryJobAndChunk) {
  ThreadPool pool(4);
  const auto before = pool.stats();

  // Inline path: at or below the pool's chunk threshold (1 for 4 threads).
  pool.ParallelFor(1, [](size_t) {});
  // Dispatched path.
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });

  const auto after = pool.stats();
  EXPECT_EQ(after.jobs_inline - before.jobs_inline, 1u);
  EXPECT_EQ(after.jobs_dispatched - before.jobs_dispatched, 1u);
  // Every chunk of the dispatched job ran exactly once, on the caller or a
  // worker.
  EXPECT_EQ((after.chunks_caller + after.chunks_worker) -
                (before.chunks_caller + before.chunks_worker),
            100u);
  EXPECT_GE(after.max_live_jobs, 1u);
}

TEST(ThreadPoolTest, SingleThreadedPoolRunsEverythingInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  uint64_t sum = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(100000, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 100000ull * 99999ull / 2);
  EXPECT_EQ(pool.stats().jobs_dispatched, 0u);
}

}  // namespace
}  // namespace gpusim
