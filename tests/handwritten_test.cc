// Tests of the handwritten expert kernels: fused selection, hash join,
// hash grouped aggregation, nested-loops join.
#include "handwritten/handwritten.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

namespace {

class HandwrittenTest : public ::testing::Test {
 protected:
  HandwrittenTest()
      : stream_(gpusim::Device::Default(), gpusim::ApiProfile::Cuda()) {}
  gpusim::Stream stream_;
};

TEST_F(HandwrittenTest, SelectIndicesFindsAllMatchesInOneKernel) {
  std::vector<int32_t> host(10000);
  std::mt19937 rng(11);
  for (auto& v : host) v = static_cast<int32_t>(rng() % 100);
  auto col = gpusim::ToDevice(stream_, host);
  gpusim::DeviceArray<uint32_t> out(host.size(), stream_.device());

  const auto before = stream_.device().Snapshot();
  const size_t count =
      handwritten::SelectIndices(stream_, col.data(), host.size(), out.data(),
                                 [](int32_t v) { return v < 10; });
  const auto delta = stream_.device().Snapshot().Delta(before);
  // memset + the fused kernel: no scan, no second pass over the data.
  EXPECT_LE(delta.kernels_launched, 2u);

  std::vector<uint32_t> got = gpusim::ToHost(stream_, out);
  got.resize(count);
  std::sort(got.begin(), got.end());
  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < host.size(); ++i) {
    if (host[i] < 10) expected.push_back(i);
  }
  EXPECT_EQ(got, expected);
}

TEST_F(HandwrittenTest, SelectIndicesEmptyAndFullSelectivity) {
  std::vector<int32_t> host{1, 2, 3};
  auto col = gpusim::ToDevice(stream_, host);
  gpusim::DeviceArray<uint32_t> out(3, stream_.device());
  EXPECT_EQ(handwritten::SelectIndices(stream_, col.data(), 3, out.data(),
                                       [](int32_t) { return false; }),
            0u);
  EXPECT_EQ(handwritten::SelectIndices(stream_, col.data(), 3, out.data(),
                                       [](int32_t) { return true; }),
            3u);
}

TEST_F(HandwrittenTest, FusedFilterSumMatchesReference) {
  std::vector<double> vals(5000);
  std::vector<int32_t> filt(5000);
  std::mt19937 rng(5);
  double expected = 0;
  for (size_t i = 0; i < vals.size(); ++i) {
    vals[i] = (rng() % 1000) / 10.0;
    filt[i] = static_cast<int32_t>(rng() % 4);
    if (filt[i] == 0) expected += vals[i];
  }
  auto dv = gpusim::ToDevice(stream_, vals);
  auto df = gpusim::ToDevice(stream_, filt);
  const double* v = dv.data();
  const int32_t* f = df.data();
  const double got = handwritten::FusedFilterSum<double>(
      stream_, vals.size(), [=](size_t i) { return f[i] == 0; },
      [=](size_t i) { return v[i]; }, sizeof(double) + sizeof(int32_t));
  EXPECT_DOUBLE_EQ(got, expected);
}

TEST_F(HandwrittenTest, FusedFilterSumEmpty) {
  EXPECT_EQ(handwritten::FusedFilterSum<double>(
                stream_, 0, [](size_t) { return true; },
                [](size_t) { return 1.0; }, 8),
            0.0);
}

TEST_F(HandwrittenTest, HashJoinPkFkMatchesReference) {
  const size_t n_build = 1000;
  const size_t n_probe = 5000;
  std::vector<int32_t> build(n_build);
  for (size_t i = 0; i < n_build; ++i) build[i] = static_cast<int32_t>(i * 3);
  std::mt19937 rng(17);
  std::vector<int32_t> probe(n_probe);
  for (auto& k : probe) k = static_cast<int32_t>(rng() % (n_build * 4));

  auto db = gpusim::ToDevice(stream_, build);
  auto dp = gpusim::ToDevice(stream_, probe);
  handwritten::HashJoin<int32_t> table(stream_, db.data(), n_build);
  gpusim::DeviceArray<uint32_t> build_rows(n_probe, stream_.device());
  gpusim::DeviceArray<uint32_t> probe_rows(n_probe, stream_.device());
  const size_t count =
      table.Probe(dp.data(), n_probe, build_rows.data(), probe_rows.data());

  // Reference join.
  std::map<int32_t, uint32_t> build_index;
  for (uint32_t i = 0; i < n_build; ++i) build_index[build[i]] = i;
  std::vector<std::pair<uint32_t, uint32_t>> expected;
  for (uint32_t i = 0; i < n_probe; ++i) {
    auto it = build_index.find(probe[i]);
    if (it != build_index.end()) expected.push_back({it->second, i});
  }

  auto gb = gpusim::ToHost(stream_, build_rows);
  auto gp = gpusim::ToHost(stream_, probe_rows);
  std::vector<std::pair<uint32_t, uint32_t>> got;
  for (size_t i = 0; i < count; ++i) got.push_back({gb[i], gp[i]});
  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

TEST_F(HandwrittenTest, HashJoinNoMatches) {
  std::vector<int32_t> build{1, 2, 3};
  std::vector<int32_t> probe{10, 20};
  auto db = gpusim::ToDevice(stream_, build);
  auto dp = gpusim::ToDevice(stream_, probe);
  handwritten::HashJoin<int32_t> table(stream_, db.data(), build.size());
  gpusim::DeviceArray<uint32_t> br(2, stream_.device());
  gpusim::DeviceArray<uint32_t> pr(2, stream_.device());
  EXPECT_EQ(table.Probe(dp.data(), 2, br.data(), pr.data()), 0u);
}

TEST_F(HandwrittenTest, HashJoinCapacityIsPowerOfTwoAndRoomy) {
  std::vector<int32_t> build(100);
  for (int i = 0; i < 100; ++i) build[i] = i;
  auto db = gpusim::ToDevice(stream_, build);
  handwritten::HashJoin<int32_t> table(stream_, db.data(), 100);
  EXPECT_GE(table.capacity(), 200u);
  EXPECT_EQ(table.capacity() & (table.capacity() - 1), 0u);
}

TEST_F(HandwrittenTest, HashGroupBySumMatchesReference) {
  const size_t n = 20000;
  std::mt19937 rng(23);
  std::vector<int32_t> keys(n);
  std::vector<double> vals(n);
  std::map<int32_t, double> ref_sum;
  std::map<int32_t, uint64_t> ref_count;
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<int32_t>(rng() % 64);
    vals[i] = static_cast<double>(rng() % 100);
    ref_sum[keys[i]] += vals[i];
    ++ref_count[keys[i]];
  }
  auto dk = gpusim::ToDevice(stream_, keys);
  auto dv = gpusim::ToDevice(stream_, vals);
  auto grouped =
      handwritten::HashGroupBySum(stream_, dk.data(), dv.data(), n);
  ASSERT_EQ(grouped.num_groups, ref_sum.size());
  auto gk = gpusim::ToHost(stream_, grouped.keys);
  auto gs = gpusim::ToHost(stream_, grouped.sums);
  auto gc = gpusim::ToHost(stream_, grouped.counts);
  for (size_t i = 0; i < grouped.num_groups; ++i) {
    ASSERT_TRUE(ref_sum.count(gk[i])) << gk[i];
    EXPECT_DOUBLE_EQ(gs[i], ref_sum[gk[i]]);
    EXPECT_EQ(gc[i], ref_count[gk[i]]);
  }
}

TEST_F(HandwrittenTest, HashGroupByReduceMinMax) {
  std::vector<int32_t> keys{1, 2, 1, 2, 1};
  std::vector<double> vals{5, 9, -1, 3, 7};
  auto dk = gpusim::ToDevice(stream_, keys);
  auto dv = gpusim::ToDevice(stream_, vals);
  auto mins = handwritten::HashGroupByReduce(
      stream_, dk.data(), dv.data(), keys.size(),
      std::numeric_limits<double>::max(),
      [](double a, double b) { return b < a ? b : a; });
  ASSERT_EQ(mins.num_groups, 2u);
  auto gk = gpusim::ToHost(stream_, mins.keys);
  auto gv = gpusim::ToHost(stream_, mins.sums);
  std::map<int32_t, double> got;
  for (size_t i = 0; i < 2; ++i) got[gk[i]] = gv[i];
  EXPECT_DOUBLE_EQ(got[1], -1.0);
  EXPECT_DOUBLE_EQ(got[2], 3.0);
}

TEST_F(HandwrittenTest, NestedLoopsJoinHandlesDuplicates) {
  std::vector<int32_t> outer{1, 2, 3};
  std::vector<int32_t> inner{2, 1, 2, 9, 1};
  auto douter = gpusim::ToDevice(stream_, outer);
  auto dinner = gpusim::ToDevice(stream_, inner);
  gpusim::DeviceArray<uint32_t> orows, irows;
  const size_t count = handwritten::NestedLoopsJoin(
      stream_, douter.data(), outer.size(), dinner.data(), inner.size(),
      &orows, &irows);
  ASSERT_EQ(count, 4u);
  const auto go = gpusim::ToHost(stream_, orows);
  const auto gi = gpusim::ToHost(stream_, irows);
  std::vector<std::pair<uint32_t, uint32_t>> got;
  for (size_t i = 0; i < count; ++i) got.push_back({go[i], gi[i]});
  std::sort(got.begin(), got.end());
  const std::vector<std::pair<uint32_t, uint32_t>> expected{
      {0, 1}, {0, 4}, {1, 0}, {1, 2}};
  EXPECT_EQ(got, expected);
}

TEST_F(HandwrittenTest, HashJoinUsesFarFewerSimulatedCyclesThanNlj) {
  // The paper's headline: libraries lack hashing, so their joins pay
  // O(n^2); the handwritten hash join is O(n). Verify the cost model sees
  // that on the same data.
  const size_t n = 4096;
  std::vector<int32_t> build(n);
  for (size_t i = 0; i < n; ++i) build[i] = static_cast<int32_t>(i);
  std::vector<int32_t> probe(build);
  auto db = gpusim::ToDevice(stream_, build);
  auto dp = gpusim::ToDevice(stream_, probe);

  gpusim::Stream nlj_stream(stream_.device(), gpusim::ApiProfile::Cuda());
  gpusim::DeviceArray<uint32_t> orows, irows;
  handwritten::NestedLoopsJoin(nlj_stream, db.data(), n, dp.data(), n, &orows,
                               &irows);

  gpusim::Stream hash_stream(stream_.device(), gpusim::ApiProfile::Cuda());
  handwritten::HashJoin<int32_t> table(hash_stream, db.data(), n);
  gpusim::DeviceArray<uint32_t> br(n, stream_.device());
  gpusim::DeviceArray<uint32_t> pr(n, stream_.device());
  table.Probe(dp.data(), n, br.data(), pr.data());

  EXPECT_GT(nlj_stream.now_ns(), 10 * hash_stream.now_ns());
}

}  // namespace
