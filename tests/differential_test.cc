// Differential fuzzing across backends: random workloads executed on all
// four library bindings must produce identical relational results (modulo
// row order where the realization is unordered). This catches semantic
// drift between the four independent operator realizations that targeted
// unit tests can miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "backends/backends.h"
#include "core/registry.h"
#include "storage/device_column.h"

namespace {

using core::AggOp;
using core::CompareOp;
using core::Predicate;
using storage::Column;
using storage::DeviceColumn;

struct Workload {
  std::vector<int32_t> ints;
  std::vector<double> doubles;
  std::vector<int32_t> keys;
  CompareOp op;
  double literal;
};

Workload MakeWorkload(uint32_t seed) {
  std::mt19937 rng(seed);
  Workload w;
  const size_t n = 512 + rng() % 4096;
  w.ints.resize(n);
  w.doubles.resize(n);
  w.keys.resize(n);
  const int32_t domain = 1 + static_cast<int32_t>(rng() % 1000);
  for (size_t i = 0; i < n; ++i) {
    w.ints[i] = static_cast<int32_t>(rng() % domain) - domain / 2;
    w.doubles[i] = ((rng() % 2000) - 1000) / 16.0;
    w.keys[i] = static_cast<int32_t>(rng() % (1 + rng() % 64));
  }
  w.op = static_cast<CompareOp>(rng() % 6);
  w.literal = static_cast<double>(static_cast<int32_t>(rng() % domain) -
                                  domain / 2);
  return w;
}

class DifferentialTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  static void SetUpTestSuite() { core::RegisterBuiltinBackends(); }

  static std::vector<std::unique_ptr<core::Backend>> AllBackends() {
    std::vector<std::unique_ptr<core::Backend>> out;
    for (const char* name :
         {backends::kThrust, backends::kBoostCompute, backends::kArrayFire,
          backends::kHandwritten}) {
      out.push_back(core::BackendRegistry::Instance().Create(name));
    }
    return out;
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(0u, 12u));

TEST_P(DifferentialTest, SelectionAgreesAcrossBackends) {
  const Workload w = MakeWorkload(GetParam());
  std::vector<std::vector<int32_t>> results;
  for (auto& backend : AllBackends()) {
    const auto col =
        storage::UploadColumn(backend->stream(), Column(w.ints));
    const auto sel =
        backend->Select(col, Predicate::Make("x", w.op, w.literal));
    auto ids = sel.row_ids.ToHost(backend->stream()).values<int32_t>();
    ids.resize(sel.count);
    std::sort(ids.begin(), ids.end());
    results.push_back(std::move(ids));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "backend index " << i;
  }
}

TEST_P(DifferentialTest, GroupBySumAgreesAcrossBackends) {
  const Workload w = MakeWorkload(GetParam() + 1000);
  std::vector<std::map<int32_t, double>> results;
  for (auto& backend : AllBackends()) {
    const auto keys =
        storage::UploadColumn(backend->stream(), Column(w.keys));
    const auto vals =
        storage::UploadColumn(backend->stream(), Column(w.doubles));
    const auto grouped = backend->GroupByAggregate(keys, vals, AggOp::kSum);
    const auto gk = grouped.keys.ToHost(backend->stream()).values<int32_t>();
    const auto gv =
        grouped.aggregate.ToHost(backend->stream()).values<double>();
    std::map<int32_t, double> m;
    for (size_t i = 0; i < grouped.num_groups; ++i) m[gk[i]] = gv[i];
    results.push_back(std::move(m));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), results[0].size()) << "backend " << i;
    for (const auto& [key, val] : results[0]) {
      ASSERT_TRUE(results[i].count(key)) << "backend " << i;
      EXPECT_NEAR(results[i][key], val, 1e-9 * std::abs(val) + 1e-9)
          << "backend " << i << " key " << key;
    }
  }
}

TEST_P(DifferentialTest, SortAndPrefixSumAgreeAcrossBackends) {
  const Workload w = MakeWorkload(GetParam() + 2000);
  std::vector<std::vector<int32_t>> sorts;
  std::vector<std::vector<int32_t>> scans;
  for (auto& backend : AllBackends()) {
    const auto col =
        storage::UploadColumn(backend->stream(), Column(w.ints));
    sorts.push_back(
        backend->Sort(col).ToHost(backend->stream()).values<int32_t>());
    scans.push_back(
        backend->PrefixSum(col).ToHost(backend->stream()).values<int32_t>());
  }
  for (size_t i = 1; i < sorts.size(); ++i) {
    EXPECT_EQ(sorts[i], sorts[0]) << "backend " << i;
    EXPECT_EQ(scans[i], scans[0]) << "backend " << i;
  }
}

TEST_P(DifferentialTest, JoinAgreesAcrossBackendsAndStrategies) {
  std::mt19937 rng(GetParam() + 3000);
  const size_t n_build = 64 + rng() % 256;
  std::vector<int32_t> build(n_build);
  for (size_t i = 0; i < n_build; ++i) build[i] = static_cast<int32_t>(i * 2);
  std::shuffle(build.begin(), build.end(), rng);
  std::vector<int32_t> probe(4 * n_build);
  for (auto& k : probe) k = static_cast<int32_t>(rng() % (4 * n_build));

  std::vector<std::vector<std::pair<int32_t, int32_t>>> results;
  for (auto& backend : AllBackends()) {
    const auto l = storage::UploadColumn(backend->stream(), Column(build));
    const auto r = storage::UploadColumn(backend->stream(), Column(probe));
    const auto join = backend->NestedLoopsJoin(l, r);
    const auto lr = join.left_rows.ToHost(backend->stream()).values<int32_t>();
    const auto rr =
        join.right_rows.ToHost(backend->stream()).values<int32_t>();
    std::vector<std::pair<int32_t, int32_t>> pairs;
    for (size_t i = 0; i < join.count; ++i) pairs.push_back({lr[i], rr[i]});
    std::sort(pairs.begin(), pairs.end());
    results.push_back(std::move(pairs));
  }
  // Hash join (handwritten) must agree with every NLJ realization.
  {
    auto hw = core::BackendRegistry::Instance().Create(backends::kHandwritten);
    const auto l = storage::UploadColumn(hw->stream(), Column(build));
    const auto r = storage::UploadColumn(hw->stream(), Column(probe));
    const auto join = hw->HashJoin(l, r);
    const auto lr = join.left_rows.ToHost(hw->stream()).values<int32_t>();
    const auto rr = join.right_rows.ToHost(hw->stream()).values<int32_t>();
    std::vector<std::pair<int32_t, int32_t>> pairs;
    for (size_t i = 0; i < join.count; ++i) pairs.push_back({lr[i], rr[i]});
    std::sort(pairs.begin(), pairs.end());
    results.push_back(std::move(pairs));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "backend/strategy index " << i;
  }
}

}  // namespace
