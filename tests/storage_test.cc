// Tests of the column storage layer.
#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/device_column.h"

namespace {

using storage::Column;
using storage::DataType;
using storage::DeviceColumn;
using storage::Table;

TEST(ColumnTest, TypeAndSize) {
  Column c(std::vector<int32_t>{1, 2, 3});
  EXPECT_EQ(c.type(), DataType::kInt32);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.byte_size(), 12u);
  Column d(std::vector<double>{1.0});
  EXPECT_EQ(d.type(), DataType::kFloat64);
  Column l(std::vector<int64_t>{1, 2});
  EXPECT_EQ(l.type(), DataType::kInt64);
}

TEST(ColumnTest, TypedAccessChecksType) {
  Column c(std::vector<int32_t>{1, 2});
  EXPECT_EQ(c.values<int32_t>()[1], 2);
  EXPECT_THROW(c.values<double>(), std::invalid_argument);
  EXPECT_THROW(c.mutable_values<int64_t>(), std::invalid_argument);
  c.mutable_values<int32_t>()[0] = 7;
  EXPECT_EQ(c.values<int32_t>()[0], 7);
}

TEST(TableTest, AddAndLookup) {
  Table t("demo");
  t.AddColumn("a", Column(std::vector<int32_t>{1, 2}));
  t.AddColumn("b", Column(std::vector<double>{0.5, 1.5}));
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.HasColumn("z"));
  EXPECT_EQ(t.column("b").values<double>()[1], 1.5);
  EXPECT_THROW(t.column("z"), std::out_of_range);
  EXPECT_EQ(t.column_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(TableTest, RejectsDuplicateAndRaggedColumns) {
  Table t("demo");
  t.AddColumn("a", Column(std::vector<int32_t>{1, 2}));
  EXPECT_THROW(t.AddColumn("a", Column(std::vector<int32_t>{3, 4})),
               std::invalid_argument);
  EXPECT_THROW(t.AddColumn("c", Column(std::vector<int32_t>{1, 2, 3})),
               std::invalid_argument);
}

TEST(DeviceColumnTest, UploadDownloadRoundtrip) {
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  Column host(std::vector<double>{1.25, -2.5, 3.75});
  DeviceColumn dev = storage::UploadColumn(stream, host);
  EXPECT_EQ(dev.type(), DataType::kFloat64);
  EXPECT_EQ(dev.size(), 3u);
  Column back = dev.ToHost(stream);
  EXPECT_EQ(back.values<double>(), host.values<double>());
}

TEST(DeviceColumnTest, TypedPointerChecksType) {
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  DeviceColumn dev(DataType::kInt32, 4, stream.device());
  EXPECT_NE(dev.data<int32_t>(), nullptr);
  EXPECT_THROW(dev.data<double>(), std::invalid_argument);
}

TEST(DeviceColumnTest, UploadChargesTransfer) {
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  Column host(std::vector<int64_t>(256, 9));
  const auto before = stream.device().Snapshot();
  DeviceColumn dev = storage::UploadColumn(stream, host);
  const auto delta = stream.device().Snapshot().Delta(before);
  EXPECT_EQ(delta.bytes_h2d, 256 * sizeof(int64_t));
}

TEST(DeviceTableTest, UploadTableCarriesAllColumns) {
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  Table t("demo");
  t.AddColumn("x", Column(std::vector<int32_t>{1, 2, 3}));
  t.AddColumn("y", Column(std::vector<double>{1, 2, 3}));
  storage::DeviceTable dev = storage::UploadTable(stream, t);
  EXPECT_EQ(dev.num_rows(), 3u);
  EXPECT_TRUE(dev.HasColumn("x"));
  EXPECT_TRUE(dev.HasColumn("y"));
  EXPECT_THROW(dev.column("zz"), std::out_of_range);
  EXPECT_EQ(dev.column("x").type(), DataType::kInt32);
}

TEST(DeviceColumnTest, BufferSharingIsZeroCopy) {
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  DeviceColumn a(DataType::kInt32, 8, stream.device());
  DeviceColumn b(DataType::kInt32, 8, a.buffer_ptr());
  EXPECT_EQ(a.raw_data(), b.raw_data());
}

}  // namespace
