// Tests of the Boost.Compute-compatible API surface, including the run-time
// program compilation behaviour that distinguishes it from the CUDA-based
// libraries.
#include "bcsim/bcsim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace {

class BcsimTest : public ::testing::Test {
 protected:
  BcsimTest() : ctx_(bcsim::default_device()), queue_(ctx_) {}

  template <typename T>
  bcsim::vector<T> Upload(const std::vector<T>& host) {
    return bcsim::vector<T>(host, queue_);
  }

  bcsim::context ctx_;
  bcsim::command_queue queue_;
};

TEST_F(BcsimTest, VectorRoundtrip) {
  const std::vector<int> host{3, 1, 4, 1, 5};
  auto dev = Upload(host);
  EXPECT_EQ(dev.to_host(queue_), host);
}

TEST_F(BcsimTest, FirstAlgorithmUseCompilesProgramSecondHitsCache) {
  auto a = Upload(std::vector<int>{1, 2, 3});
  bcsim::vector<int> out(3, ctx_);
  auto triple = bcsim::make_function("triple", [](int v) { return 3 * v; });
  const auto before = gpusim::Device::Default().Snapshot();
  bcsim::transform(a.begin(), a.end(), out.begin(), triple, queue_);
  const auto mid = gpusim::Device::Default().Snapshot();
  EXPECT_GE(mid.Delta(before).programs_compiled, 1u);
  bcsim::transform(a.begin(), a.end(), out.begin(), triple, queue_);
  const auto after = gpusim::Device::Default().Snapshot();
  EXPECT_EQ(after.Delta(mid).programs_compiled, 0u);
  EXPECT_EQ(out.to_host(queue_), (std::vector<int>{3, 6, 9}));
}

TEST_F(BcsimTest, DistinctFunctorsCompileDistinctPrograms) {
  auto a = Upload(std::vector<int>{1, 2, 3});
  bcsim::vector<int> out(3, ctx_);
  const auto before = gpusim::Device::Default().Snapshot();
  bcsim::transform(a.begin(), a.end(), out.begin(),
                   bcsim::make_function("square", [](int v) { return v * v; }),
                   queue_);
  bcsim::transform(a.begin(), a.end(), out.begin(),
                   bcsim::make_function("cube", [](int v) { return v * v * v; }),
                   queue_);
  const auto delta = gpusim::Device::Default().Snapshot().Delta(before);
  EXPECT_EQ(delta.programs_compiled, 2u);
}

TEST_F(BcsimTest, DistinctValueTypesCompileDistinctPrograms) {
  auto a32 = Upload(std::vector<int32_t>{1, 2});
  auto a64 = Upload(std::vector<int64_t>{1, 2});
  const auto before = gpusim::Device::Default().Snapshot();
  bcsim::reduce(a32.begin(), a32.end(), int32_t{0}, bcsim::plus<int32_t>(),
                queue_);
  bcsim::reduce(a64.begin(), a64.end(), int64_t{0}, bcsim::plus<int64_t>(),
                queue_);
  const auto delta = gpusim::Device::Default().Snapshot().Delta(before);
  EXPECT_EQ(delta.programs_compiled, 2u);
}

TEST_F(BcsimTest, FreshContextHasColdCache) {
  auto a = Upload(std::vector<int>{1, 2, 3});
  bcsim::reduce(a.begin(), a.end(), 0, bcsim::plus<int>(), queue_);
  // A second queue on a NEW context recompiles.
  bcsim::context ctx2(bcsim::default_device());
  bcsim::command_queue queue2(ctx2);
  const auto before = gpusim::Device::Default().Snapshot();
  bcsim::reduce(a.begin(), a.end(), 0, bcsim::plus<int>(), queue2);
  EXPECT_GE(gpusim::Device::Default().Snapshot().Delta(before)
                .programs_compiled,
            1u);
  // Same context: cached.
  const auto mid = gpusim::Device::Default().Snapshot();
  bcsim::reduce(a.begin(), a.end(), 0, bcsim::plus<int>(), queue_);
  EXPECT_EQ(gpusim::Device::Default().Snapshot().Delta(mid).programs_compiled,
            0u);
}

TEST_F(BcsimTest, CompileChargesQueueTimeline) {
  auto a = Upload(std::vector<int>{1, 2, 3});
  bcsim::vector<int> out(3, ctx_);
  const uint64_t before = queue_.stream().now_ns();
  bcsim::transform(a.begin(), a.end(), out.begin(),
                   bcsim::make_function("inc", [](int v) { return v + 1; }),
                   queue_);
  const uint64_t first_call = queue_.stream().now_ns() - before;
  const uint64_t mid = queue_.stream().now_ns();
  bcsim::transform(a.begin(), a.end(), out.begin(),
                   bcsim::make_function("inc", [](int v) { return v + 1; }),
                   queue_);
  const uint64_t second_call = queue_.stream().now_ns() - mid;
  // The compile dominates the first call (38 ms vs microseconds).
  EXPECT_GT(first_call, 100 * second_call);
}

TEST_F(BcsimTest, TransformReduceScanSortWork) {
  std::vector<int> host(3000);
  std::iota(host.begin(), host.end(), 0);
  std::reverse(host.begin(), host.end());
  auto a = Upload(host);

  EXPECT_EQ(bcsim::reduce(a.begin(), a.end(), queue_),
            std::accumulate(host.begin(), host.end(), 0));

  bcsim::vector<int> scanned(host.size(), ctx_);
  bcsim::exclusive_scan(a.begin(), a.end(), scanned.begin(), queue_);
  auto hs = scanned.to_host(queue_);
  int acc = 0;
  for (size_t i = 0; i < host.size(); ++i) {
    EXPECT_EQ(hs[i], acc);
    acc += host[i];
  }

  bcsim::sort(a.begin(), a.end(), queue_);
  auto sorted = a.to_host(queue_);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST_F(BcsimTest, SortByKeyAndReduceByKey) {
  auto keys = Upload(std::vector<int>{3, 1, 2, 1, 3, 3});
  auto vals = Upload(std::vector<int>{30, 10, 20, 11, 31, 32});
  bcsim::sort_by_key(keys.begin(), keys.end(), vals.begin(), queue_);
  bcsim::vector<int> ok(6, ctx_), ov(6, ctx_);
  auto ends = bcsim::reduce_by_key(keys.begin(), keys.end(), vals.begin(),
                                   ok.begin(), ov.begin(), queue_);
  ASSERT_EQ(ends.first - ok.begin(), 3);
  auto hk = ok.to_host(queue_);
  auto hv = ov.to_host(queue_);
  EXPECT_EQ(hk[0], 1);
  EXPECT_EQ(hv[0], 21);
  EXPECT_EQ(hk[1], 2);
  EXPECT_EQ(hv[1], 20);
  EXPECT_EQ(hk[2], 3);
  EXPECT_EQ(hv[2], 93);
}

TEST_F(BcsimTest, CopyIfCountIfGatherScatter) {
  auto a = Upload(std::vector<int>{-1, 2, -3, 4});
  bcsim::vector<int> out(4, ctx_);
  auto end = bcsim::copy_if(
      a.begin(), a.end(), out.begin(),
      bcsim::make_function("positive", [](int v) { return v > 0; }), queue_);
  EXPECT_EQ(end - out.begin(), 2);

  EXPECT_EQ(bcsim::count_if(
                a.begin(), a.end(),
                bcsim::make_function("negative", [](int v) { return v < 0; }),
                queue_),
            2u);

  auto map = Upload(std::vector<uint32_t>{3, 2, 1, 0});
  bcsim::vector<int> gathered(4, ctx_);
  bcsim::gather(map.begin(), map.end(), a.begin(), gathered.begin(), queue_);
  EXPECT_EQ(gathered.to_host(queue_), (std::vector<int>{4, -3, 2, -1}));
}

TEST_F(BcsimTest, AccumulateFindEqual) {
  auto a = Upload(std::vector<int>{5, 3, 8, 3});
  EXPECT_EQ(bcsim::accumulate(a.begin(), a.end(), 0, queue_), 19);

  auto it = bcsim::find(a.begin(), a.end(), 3, queue_);
  EXPECT_EQ(it - a.begin(), 1);  // first occurrence
  EXPECT_EQ(bcsim::find(a.begin(), a.end(), 42, queue_), a.end());

  auto b = Upload(std::vector<int>{5, 3, 8, 3});
  EXPECT_TRUE(bcsim::equal(a.begin(), a.end(), b.begin(), queue_));
  auto c = Upload(std::vector<int>{5, 3, 8, 4});
  EXPECT_FALSE(bcsim::equal(a.begin(), a.end(), c.begin(), queue_));
}

TEST_F(BcsimTest, AdjacentDifference) {
  auto a = Upload(std::vector<int>{2, 9, 4});
  bcsim::vector<int> out(3, ctx_);
  bcsim::adjacent_difference(a.begin(), a.end(), out.begin(),
                             bcsim::minus<int>(), queue_);
  EXPECT_EQ(out.to_host(queue_), (std::vector<int>{2, 7, -5}));
}

TEST_F(BcsimTest, UniqueOnSortedRange) {
  auto a = Upload(std::vector<int>{1, 1, 2, 2, 2, 7});
  auto end = bcsim::unique(a.begin(), a.end(), queue_);
  EXPECT_EQ(end - a.begin(), 3);
  auto h = a.to_host(queue_);
  h.resize(3);
  EXPECT_EQ(h, (std::vector<int>{1, 2, 7}));
}

TEST_F(BcsimTest, QueueUsesOpenClProfile) {
  EXPECT_STREQ(queue_.stream().profile().name, "opencl");
  EXPECT_GT(queue_.stream().profile().program_compile_ns, 0u);
}

TEST_F(BcsimTest, ContextCountsPrograms) {
  const size_t before = ctx_.num_programs_built();
  queue_.ensure_program("bcsim.test.unique_key_xyz");
  queue_.ensure_program("bcsim.test.unique_key_xyz");
  EXPECT_EQ(ctx_.num_programs_built(), before + 1);
}

}  // namespace
