// Tests of the ArrayFire-compatible API surface, especially the lazy
// evaluation / JIT fusion behaviour that distinguishes it from the eager
// libraries.
#include "afsim/afsim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace {

using afsim::array;
using afsim::dtype;

TEST(AfsimArrayTest, HostRoundtripPerType) {
  const std::vector<int32_t> i32{1, -2, 3};
  EXPECT_EQ(afsim::from_vector(i32).host<int32_t>(), i32);
  const std::vector<double> f64{1.5, -2.5};
  EXPECT_EQ(afsim::from_vector(f64).host<double>(), f64);
  const std::vector<int64_t> i64{int64_t{1} << 40};
  EXPECT_EQ(afsim::from_vector(i64).host<int64_t>(), i64);
}

TEST(AfsimArrayTest, HostTypeMismatchThrows) {
  array a = afsim::from_vector(std::vector<int32_t>{1});
  EXPECT_THROW(a.host<double>(), std::invalid_argument);
}

TEST(AfsimArrayTest, ScalarExtraction) {
  array a = afsim::from_vector(std::vector<double>{42.5, 1.0});
  EXPECT_EQ(a.scalar<double>(), 42.5);
  EXPECT_THROW(array().scalar<double>(), std::invalid_argument);
}

TEST(AfsimLazyTest, ElementwiseOpsAreLazyUntilEval) {
  array a = afsim::from_vector(std::vector<double>(1000, 2.0));
  array b = afsim::from_vector(std::vector<double>(1000, 3.0));
  const auto before = gpusim::Device::Default().Snapshot();
  array c = a * b + 1.0;
  // Graph building launches nothing.
  EXPECT_EQ(gpusim::Device::Default().Snapshot().Delta(before)
                .kernels_launched,
            0u);
  EXPECT_TRUE(c.is_lazy());
  c.eval();
  EXPECT_FALSE(c.is_lazy());
  const auto delta = gpusim::Device::Default().Snapshot().Delta(before);
  EXPECT_EQ(delta.kernels_launched, 1u);  // the whole chain fused
  EXPECT_EQ(c.host<double>()[0], 7.0);
}

TEST(AfsimLazyTest, FusionReadsEachLeafOnce) {
  const size_t n = 10000;
  array a = afsim::from_vector(std::vector<double>(n, 1.0));
  const auto before = gpusim::Device::Default().Snapshot();
  // Four chained element-wise stages over one input.
  array c = ((a + 1.0) * 2.0 - 3.0) * 0.5;
  c.eval();
  const auto delta = gpusim::Device::Default().Snapshot().Delta(before);
  EXPECT_EQ(delta.kernels_launched, 1u);
  // One pass: reads the single leaf once, writes the output once.
  EXPECT_EQ(delta.bytes_read, n * sizeof(double));
  EXPECT_EQ(delta.bytes_written, n * sizeof(double));
}

TEST(AfsimLazyTest, EvalIsIdempotentAndSharedAcrossHandles) {
  array a = afsim::from_vector(std::vector<int32_t>{1, 2, 3});
  array b = a + 1.0;
  array alias = b;  // shares the lazy node
  b.eval();
  EXPECT_FALSE(alias.is_lazy());  // aliasing handle sees materialization
  const auto before = gpusim::Device::Default().Snapshot();
  b.eval();
  EXPECT_EQ(gpusim::Device::Default().Snapshot().Delta(before)
                .kernels_launched,
            0u);
}

TEST(AfsimLazyTest, DeepChainsAutoEvaluate) {
  array a = afsim::from_vector(std::vector<double>(64, 1.0));
  // Build a chain far beyond the JIT length bound; it must stay correct.
  for (int i = 0; i < 100; ++i) a = a + 1.0;
  EXPECT_EQ(a.host<double>()[0], 101.0);
}

TEST(AfsimTypeTest, ComparisonYieldsB8) {
  array a = afsim::from_vector(std::vector<int32_t>{1, 5, 3});
  array m = a > 2.0;
  EXPECT_EQ(m.type(), dtype::b8);
  EXPECT_EQ(m.host<uint8_t>(), (std::vector<uint8_t>{0, 1, 1}));
}

TEST(AfsimTypeTest, ArithmeticPromotesToWiderType) {
  array i = afsim::from_vector(std::vector<int32_t>{4});
  array d = afsim::from_vector(std::vector<double>{0.5});
  EXPECT_EQ((i * d).type(), dtype::f64);
  EXPECT_EQ((i * d).host<double>()[0], 2.0);
  EXPECT_EQ((i + i).type(), dtype::s32);
}

TEST(AfsimTypeTest, IntegerScalarKeepsIntegerType) {
  array i = afsim::from_vector(std::vector<int32_t>{10});
  EXPECT_EQ((i + 1.0).type(), dtype::s32);
  EXPECT_EQ((i + 0.5).type(), dtype::f64);
}

TEST(AfsimTypeTest, CastConvertsValues) {
  array d = afsim::from_vector(std::vector<double>{2.75, -1.25});
  array i = afsim::cast(d, dtype::s32);
  EXPECT_EQ(i.host<int32_t>(), (std::vector<int32_t>{2, -1}));
  array b = afsim::cast(d, dtype::b8);
  EXPECT_EQ(b.host<uint8_t>(), (std::vector<uint8_t>{1, 1}));
}

TEST(AfsimTypeTest, LogicalOpsAndNot) {
  array a = afsim::from_vector(std::vector<int32_t>{0, 1, 2, 0});
  array b = afsim::from_vector(std::vector<int32_t>{1, 1, 0, 0});
  EXPECT_EQ((a && b).host<uint8_t>(), (std::vector<uint8_t>{0, 1, 0, 0}));
  EXPECT_EQ((a || b).host<uint8_t>(), (std::vector<uint8_t>{1, 1, 1, 0}));
  EXPECT_EQ((!a).host<uint8_t>(), (std::vector<uint8_t>{1, 0, 0, 1}));
}

TEST(AfsimTypeTest, SizeMismatchThrows) {
  array a = afsim::from_vector(std::vector<int32_t>{1, 2});
  array b = afsim::from_vector(std::vector<int32_t>{1, 2, 3});
  EXPECT_THROW(a + b, std::invalid_argument);
}

TEST(AfsimWhereTest, WhereReturnsAscendingIndices) {
  array a = afsim::from_vector(std::vector<int32_t>{5, -1, 7, 0, 9});
  array idx = afsim::where(a > 0.0);
  EXPECT_EQ(idx.type(), dtype::u32);
  EXPECT_EQ(idx.host<uint32_t>(), (std::vector<uint32_t>{0, 2, 4}));
}

TEST(AfsimWhereTest, WhereOnFusedPredicate) {
  array qty = afsim::from_vector(std::vector<double>{10, 30, 20, 50});
  array disc = afsim::from_vector(std::vector<double>{0.05, 0.05, 0.10, 0.01});
  array idx = afsim::where(qty < 25.0 && disc >= 0.05);
  EXPECT_EQ(idx.host<uint32_t>(), (std::vector<uint32_t>{0, 2}));
}

TEST(AfsimWhereTest, LookupGathers) {
  array a = afsim::from_vector(std::vector<double>{10, 20, 30, 40});
  array idx = afsim::from_vector(std::vector<uint32_t>{3, 0, 3});
  EXPECT_EQ(afsim::lookup(a, idx).host<double>(),
            (std::vector<double>{40, 10, 40}));
}

TEST(AfsimReduceTest, SumMinMaxCount) {
  array a = afsim::from_vector(std::vector<double>{1.5, -2.0, 3.5});
  EXPECT_DOUBLE_EQ(afsim::sum<double>(a), 3.0);
  EXPECT_DOUBLE_EQ(afsim::min_all<double>(a), -2.0);
  EXPECT_DOUBLE_EQ(afsim::max_all<double>(a), 3.5);
  array m = afsim::from_vector(std::vector<int32_t>{0, 3, 0, 1});
  EXPECT_EQ(afsim::count(m), 2u);
  array i = afsim::from_vector(std::vector<int64_t>{1, 2, 3});
  EXPECT_EQ(afsim::sum<int64_t>(i), 6);
}

TEST(AfsimReduceTest, SumForcesEvaluationOfLazyInput) {
  array a = afsim::from_vector(std::vector<double>{1, 2, 3});
  array b = a * 2.0;
  EXPECT_TRUE(b.is_lazy());
  EXPECT_DOUBLE_EQ(afsim::sum<double>(b), 12.0);
  EXPECT_FALSE(b.is_lazy());
}

TEST(AfsimScanTest, AccumAndExclusiveScan) {
  array a = afsim::from_vector(std::vector<int32_t>{1, 2, 3, 4});
  EXPECT_EQ(afsim::accum(a).host<int32_t>(),
            (std::vector<int32_t>{1, 3, 6, 10}));
  EXPECT_EQ(afsim::scan(a, /*inclusive_scan=*/false).host<int32_t>(),
            (std::vector<int32_t>{0, 1, 3, 6}));
}

TEST(AfsimSortTest, SortAndSortByKey) {
  array a = afsim::from_vector(std::vector<int32_t>{3, 1, 2});
  EXPECT_EQ(afsim::sort(a).host<int32_t>(), (std::vector<int32_t>{1, 2, 3}));
  // sort() returns a new array; the input is untouched.
  EXPECT_EQ(a.host<int32_t>(), (std::vector<int32_t>{3, 1, 2}));

  array keys = afsim::from_vector(std::vector<int32_t>{3, 1, 2});
  array vals = afsim::from_vector(std::vector<double>{30, 10, 20});
  array sk, sv;
  afsim::sort(&sk, &sv, keys, vals);
  EXPECT_EQ(sk.host<int32_t>(), (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(sv.host<double>(), (std::vector<double>{10, 20, 30}));
}

TEST(AfsimByKeyTest, SumByKeyOverGroupedKeys) {
  array keys = afsim::from_vector(std::vector<int32_t>{1, 1, 2, 5, 5, 5});
  array vals = afsim::from_vector(std::vector<double>{1, 2, 3, 4, 5, 6});
  array ok, ov;
  afsim::sumByKey(&ok, &ov, keys, vals);
  EXPECT_EQ(ok.host<int32_t>(), (std::vector<int32_t>{1, 2, 5}));
  EXPECT_EQ(ov.host<double>(), (std::vector<double>{3, 3, 15}));
}

TEST(AfsimByKeyTest, CountMinMaxByKey) {
  array keys = afsim::from_vector(std::vector<int32_t>{1, 1, 1, 9});
  array vals = afsim::from_vector(std::vector<double>{5, -2, 7, 4});
  array ok, oc;
  afsim::countByKey(&ok, &oc, keys);
  EXPECT_EQ(oc.host<uint32_t>(), (std::vector<uint32_t>{3, 1}));
  array ov;
  afsim::minByKey(&ok, &ov, keys, vals);
  EXPECT_EQ(ov.host<double>(), (std::vector<double>{-2, 4}));
  afsim::maxByKey(&ok, &ov, keys, vals);
  EXPECT_EQ(ov.host<double>(), (std::vector<double>{7, 4}));
}

TEST(AfsimReduceTest, MeanAnyAllTrue) {
  array a = afsim::from_vector(std::vector<double>{1.0, 2.0, 6.0});
  EXPECT_DOUBLE_EQ(afsim::mean(a), 3.0);
  array mask = afsim::from_vector(std::vector<int32_t>{1, 1, 0});
  EXPECT_TRUE(afsim::anyTrue(mask));
  EXPECT_FALSE(afsim::allTrue(mask));
  EXPECT_TRUE(afsim::allTrue(a > 0.0));
  EXPECT_FALSE(afsim::anyTrue(a > 100.0));
}

TEST(AfsimShapeTest, Diff1AndFlip) {
  array a = afsim::from_vector(std::vector<int32_t>{1, 4, 9, 16});
  EXPECT_EQ(afsim::diff1(a).host<int32_t>(),
            (std::vector<int32_t>{3, 5, 7}));
  EXPECT_EQ(afsim::flip(a).host<int32_t>(),
            (std::vector<int32_t>{16, 9, 4, 1}));
  array single = afsim::from_vector(std::vector<int32_t>{7});
  EXPECT_TRUE(afsim::diff1(single).is_empty());
}

TEST(AfsimSetTest, UniqueIntersectUnion) {
  array a = afsim::from_vector(std::vector<int32_t>{3, 1, 3, 2, 1});
  EXPECT_EQ(afsim::setUnique(a).host<int32_t>(),
            (std::vector<int32_t>{1, 2, 3}));

  array b = afsim::from_vector(std::vector<int32_t>{2, 3, 9});
  EXPECT_EQ(afsim::setIntersect(a, b).host<int32_t>(),
            (std::vector<int32_t>{2, 3}));
  EXPECT_EQ(afsim::setUnion(a, b).host<int32_t>(),
            (std::vector<int32_t>{1, 2, 3, 9}));
}

TEST(AfsimSetTest, JoinConcatenates) {
  array a = afsim::from_vector(std::vector<int32_t>{1, 2});
  array b = afsim::from_vector(std::vector<int32_t>{3});
  EXPECT_EQ(afsim::join(a, b).host<int32_t>(),
            (std::vector<int32_t>{1, 2, 3}));
}

TEST(AfsimFactoryTest, ConstantAndRange) {
  array c = afsim::constant(2.5, 4, dtype::f64);
  EXPECT_EQ(c.host<double>(), (std::vector<double>{2.5, 2.5, 2.5, 2.5}));
  array r = afsim::range(5, dtype::s32);
  EXPECT_EQ(r.host<int32_t>(), (std::vector<int32_t>{0, 1, 2, 3, 4}));
}

TEST(AfsimFactoryTest, ConstantBroadcastsAgainstArrays) {
  array a = afsim::from_vector(std::vector<double>{1, 2, 3});
  array c = afsim::constant(10.0, 3, dtype::f64);
  EXPECT_EQ((a + c).host<double>(), (std::vector<double>{11, 12, 13}));
}

TEST(AfsimScatterTest, AssignIndexedScatters) {
  array target = afsim::constant(0.0, 5, dtype::f64);
  target.eval();
  array idx = afsim::from_vector(std::vector<uint32_t>{4, 1});
  array vals = afsim::from_vector(std::vector<double>{9.0, 8.0});
  afsim::assign_indexed(target, idx, vals);
  EXPECT_EQ(target.host<double>(), (std::vector<double>{0, 8, 0, 0, 9}));
}

TEST(AfsimInteropTest, FromBufferIsZeroCopy) {
  auto& device = gpusim::Device::Default();
  gpusim::Stream stream(device, gpusim::ApiProfile::Cuda());
  auto buffer = std::make_shared<gpusim::DeviceBuffer>(3 * sizeof(int32_t),
                                                       device);
  const std::vector<int32_t> host{1, 2, 3};
  gpusim::CopyHostToDevice(stream, buffer->data(), host.data(),
                           3 * sizeof(int32_t));
  array a = afsim::from_buffer(buffer, dtype::s32, 3);
  EXPECT_EQ(a.host<int32_t>(), host);
  // Mutating the underlying buffer is visible through the array (view).
  static_cast<int32_t*>(buffer->data())[0] = 99;
  EXPECT_EQ(a.host<int32_t>()[0], 99);
  EXPECT_EQ(a.device_ptr(), buffer->data());
}

TEST(AfsimTypeTest, CastBetweenAllNumericTypes) {
  array s32 = afsim::from_vector(std::vector<int32_t>{-3, 7});
  EXPECT_EQ(afsim::cast(s32, dtype::s64).host<int64_t>(),
            (std::vector<int64_t>{-3, 7}));
  EXPECT_EQ(afsim::cast(s32, dtype::f32).host<float>(),
            (std::vector<float>{-3.0f, 7.0f}));
  EXPECT_EQ(afsim::cast(s32, dtype::f64).host<double>(),
            (std::vector<double>{-3.0, 7.0}));
  array u = afsim::cast(afsim::from_vector(std::vector<int32_t>{5}),
                        dtype::u32);
  EXPECT_EQ(u.host<uint32_t>(), (std::vector<uint32_t>{5}));
  // cast to the same type is the identity (no new node needed).
  array same = afsim::cast(s32, dtype::s32);
  EXPECT_EQ(same.node(), s32.node());
}

TEST(AfsimReduceTest, SumOfEmptyArrayIsZero) {
  array empty = afsim::from_vector(std::vector<double>{});
  EXPECT_DOUBLE_EQ(afsim::sum<double>(empty), 0.0);
  EXPECT_EQ(afsim::count(empty), 0u);
  EXPECT_THROW(afsim::mean(empty), std::out_of_range);
}

TEST(AfsimWhereTest, WhereAllFalseIsEmpty) {
  array a = afsim::from_vector(std::vector<int32_t>{1, 2, 3});
  array idx = afsim::where(a > 100.0);
  EXPECT_TRUE(idx.is_empty());
  EXPECT_TRUE(afsim::lookup(a, idx).is_empty());
}

TEST(AfsimSetTest, IntersectOfDisjointSetsIsEmpty) {
  array a = afsim::from_vector(std::vector<int32_t>{1, 3, 5});
  array b = afsim::from_vector(std::vector<int32_t>{2, 4, 6});
  EXPECT_TRUE(afsim::setIntersect(a, b, /*is_unique=*/true).is_empty());
}

TEST(AfsimOverheadTest, GraphBuildingChargesHostOverhead) {
  array a = afsim::from_vector(std::vector<double>{1});
  const uint64_t before = afsim::default_stream().now_ns();
  array b = a + 1.0;
  const uint64_t after = afsim::default_stream().now_ns();
  EXPECT_GE(after - before, afsim::kJitNodeOverheadNs);
}

}  // namespace
