// The device pool and thread-pool hot-path changes are host-side only: the
// cost model must not be able to observe them. These tests pin that
// invariant by running identical primitive sequences on a cold pool (every
// scratch allocation misses) and on a warm pool (scratch is reused) and
// asserting golden-equal now_ns() timelines.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "gpusim/algorithms.h"
#include "gpusim/device.h"
#include "gpusim/memory.h"
#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/tpch_plans.h"
#include "storage/device_column.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace gpusim {
namespace {

/// Runs the multi-pass primitive sequence (tree reduce, Blelloch scan, radix
/// sort, compaction) that exercises every scratch-allocation site and
/// returns the stream's simulated time.
uint64_t RunPrimitiveSequence(Device& device) {
  Stream stream(device, ApiProfile::Cuda());
  const size_t n = 50'000;
  std::vector<uint32_t> host(n);
  for (size_t i = 0; i < n; ++i) host[i] = static_cast<uint32_t>((i * 2654435761u) >> 8);

  DeviceArray<uint32_t> in = ToDevice(stream, host, device);
  DeviceArray<uint32_t> out(n, device);

  const uint32_t sum = Reduce(stream, in.data(), n, uint32_t{0},
                              [](uint32_t a, uint32_t b) { return a + b; });
  InclusiveScan(stream, in.data(), out.data(), n,
                [](uint32_t a, uint32_t b) { return a + b; });
  RadixSortKeys(stream, in.data(), n);
  const size_t kept = CopyIf(stream, in.data(), n, out.data(),
                             [](uint32_t v) { return (v & 1) == 0; });
  // Fold results into the timeline via a transfer so they cannot be DCE'd.
  EXPECT_GT(sum, 0u);
  EXPECT_GT(kept, 0u);
  return stream.now_ns();
}

TEST(TimingInvarianceTest, SimulatedTimeIdenticalColdAndWarmPool) {
  Device device;
  const auto before = device.Snapshot();
  const uint64_t cold = RunPrimitiveSequence(device);
  const auto mid = device.Snapshot();
  const uint64_t warm = RunPrimitiveSequence(device);
  const auto after = device.Snapshot();

  // The second run reuses the first run's scratch blocks...
  EXPECT_GT(after.pool_hits - mid.pool_hits, 0u);
  EXPECT_GT(mid.pool_misses - before.pool_misses, 0u);
  // ...but its simulated timeline is bit-identical: the pool is invisible to
  // the cost model.
  EXPECT_EQ(cold, warm);
}

TEST(TimingInvarianceTest, CountersDeltaIdenticalColdAndWarmPool) {
  Device device;
  const auto s0 = device.Snapshot();
  RunPrimitiveSequence(device);
  const auto s1 = device.Snapshot();
  RunPrimitiveSequence(device);
  const auto s2 = device.Snapshot();

  const auto cold = s1.Delta(s0);
  const auto warm = s2.Delta(s1);
  EXPECT_EQ(cold.kernels_launched, warm.kernels_launched);
  EXPECT_EQ(cold.bytes_read, warm.bytes_read);
  EXPECT_EQ(cold.bytes_written, warm.bytes_written);
  EXPECT_EQ(cold.simulated_ns, warm.simulated_ns);
  EXPECT_EQ(cold.allocations, warm.allocations);
}

TEST(TimingInvarianceTest, TrimmedPoolDoesNotChangeSimulatedTime) {
  Device device;
  const uint64_t t1 = RunPrimitiveSequence(device);
  device.TrimPool();
  const uint64_t t2 = RunPrimitiveSequence(device);
  EXPECT_EQ(t1, t2);
}

TEST(TimingInvarianceTest, SimulatedTimeIdenticalSerialAndConcurrentStreams) {
  // The multi-submitter thread pool lets several streams execute kernels on
  // the device at once, but each stream's simulated timeline must be a pure
  // function of its own command sequence: the golden value from a serial
  // run must reappear bit-identically on every concurrently-running stream,
  // under any host interleaving.
  Device device(DeviceProperties(), /*host_threads=*/4);
  const uint64_t golden = RunPrimitiveSequence(device);

  const unsigned kStreams = 4;
  std::vector<uint64_t> concurrent(kStreams, 0);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kStreams; ++t) {
    threads.emplace_back(
        [&, t] { concurrent[t] = RunPrimitiveSequence(device); });
  }
  for (auto& th : threads) th.join();

  for (unsigned t = 0; t < kStreams; ++t) {
    EXPECT_EQ(concurrent[t], golden) << "stream on host thread " << t;
  }
}

}  // namespace
}  // namespace gpusim

namespace {

// The plan executor promises the same invariance one level up: a plan pinned
// to a single backend issues the hand-coded query's exact call sequence, so
// its simulated timeline must be bit-identical to the hand-coded run's — not
// merely close.
TEST(TimingInvarianceTest, PinnedPlanReplaysHandCodedTimeline) {
  core::RegisterBuiltinBackends();
  tpch::Config config;
  config.scale_factor = 0.01;
  gpusim::Stream setup(gpusim::Device::Default(), gpusim::ApiProfile::Cuda());
  const storage::DeviceTable lineitem =
      storage::UploadTable(setup, tpch::GenerateLineitem(config));

  for (const char* backend_name : {"Thrust", "Handwritten"}) {
    SCOPED_TRACE(backend_name);
    auto& registry = core::BackendRegistry::Instance();

    auto hand_backend = registry.Create(backend_name);
    const uint64_t t0 = hand_backend->stream().now_ns();
    tpch::RunQ6(*hand_backend, lineitem);
    const uint64_t hand_ns = hand_backend->stream().now_ns() - t0;

    const plan::QueryPlanBundle bundle = plan::BuildQ6Plan(lineitem);
    plan::OptimizerOptions opts;
    opts.pin_backend = backend_name;
    const plan::PhysicalPlan phys = plan::Optimize(bundle.plan, opts);
    auto plan_backend = registry.Create(backend_name);
    const uint64_t s0 = plan_backend->stream().now_ns();
    const plan::ExecutionResult res = plan::RunPinned(phys, *plan_backend);
    const uint64_t stream_ns = plan_backend->stream().now_ns() - s0;

    EXPECT_EQ(res.total_ns, hand_ns);
    // The per-node accounting must also agree with the stream's own clock.
    EXPECT_EQ(stream_ns, hand_ns);
  }
}

}  // namespace
