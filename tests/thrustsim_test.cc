// Tests of the Thrust-compatible API surface.
#include "thrustsim/thrustsim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

namespace {

using thrustsim::device_vector;

TEST(ThrustSimVectorTest, HostRoundtrip) {
  std::vector<int> host{1, 2, 3, 4, 5};
  device_vector<int> dev(host);
  EXPECT_EQ(dev.size(), 5u);
  EXPECT_EQ(dev.to_host(), host);
}

TEST(ThrustSimVectorTest, FillConstructor) {
  device_vector<double> dev(100, 2.5);
  for (double v : dev.to_host()) EXPECT_EQ(v, 2.5);
}

TEST(ThrustSimVectorTest, CopyIsDeepAndPriced) {
  device_vector<int> a({1, 2, 3});
  const auto before = gpusim::Device::Default().Snapshot();
  device_vector<int> b(a);
  const auto delta = gpusim::Device::Default().Snapshot().Delta(before);
  EXPECT_EQ(delta.bytes_d2d, 3 * sizeof(int));
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(b.to_host(), (std::vector<int>{1, 2, 3}));
}

TEST(ThrustSimVectorTest, ResizePreservesPrefix) {
  device_vector<int> a({1, 2, 3, 4});
  a.resize(2);
  EXPECT_EQ(a.to_host(), (std::vector<int>{1, 2}));
  a.resize(5);
  auto h = a.to_host();
  EXPECT_EQ(h[0], 1);
  EXPECT_EQ(h[1], 2);
}

TEST(ThrustSimVectorTest, UploadChargesH2DTransfer) {
  const auto before = gpusim::Device::Default().Snapshot();
  device_vector<int64_t> dev(std::vector<int64_t>(1000, 7));
  const auto delta = gpusim::Device::Default().Snapshot().Delta(before);
  EXPECT_EQ(delta.bytes_h2d, 1000 * sizeof(int64_t));
}

TEST(ThrustSimAlgorithmTest, TransformUnaryAndBinary) {
  device_vector<int> a({1, 2, 3, 4});
  device_vector<int> b({10, 20, 30, 40});
  device_vector<int> out(4);
  thrustsim::transform(a.begin(), a.end(), out.begin(),
                       [](int v) { return v * v; });
  EXPECT_EQ(out.to_host(), (std::vector<int>{1, 4, 9, 16}));
  thrustsim::transform(a.begin(), a.end(), b.begin(), out.begin(),
                       thrustsim::plus<int>());
  EXPECT_EQ(out.to_host(), (std::vector<int>{11, 22, 33, 44}));
}

TEST(ThrustSimAlgorithmTest, ReduceDefaultAndCustomOp) {
  device_vector<int> a({5, 3, 8, 1});
  EXPECT_EQ(thrustsim::reduce(a.begin(), a.end()), 17);
  EXPECT_EQ(thrustsim::reduce(a.begin(), a.end(), 100), 117);
  EXPECT_EQ(thrustsim::reduce(a.begin(), a.end(), 0,
                              thrustsim::maximum<int>()),
            8);
}

TEST(ThrustSimAlgorithmTest, TransformReduce) {
  device_vector<int> a({1, 2, 3});
  const int got = thrustsim::transform_reduce(
      a.begin(), a.end(), [](int v) { return v * v; }, 0,
      thrustsim::plus<int>());
  EXPECT_EQ(got, 14);
}

TEST(ThrustSimAlgorithmTest, Scans) {
  device_vector<int> a({1, 2, 3, 4});
  device_vector<int> out(4);
  thrustsim::exclusive_scan(a.begin(), a.end(), out.begin());
  EXPECT_EQ(out.to_host(), (std::vector<int>{0, 1, 3, 6}));
  thrustsim::exclusive_scan(a.begin(), a.end(), out.begin(), 10);
  EXPECT_EQ(out.to_host(), (std::vector<int>{10, 11, 13, 16}));
  thrustsim::inclusive_scan(a.begin(), a.end(), out.begin());
  EXPECT_EQ(out.to_host(), (std::vector<int>{1, 3, 6, 10}));
}

TEST(ThrustSimAlgorithmTest, SortAndSortByKey) {
  std::mt19937 rng(3);
  std::vector<int> keys(5000);
  for (auto& k : keys) k = static_cast<int>(rng() % 1000) - 500;
  device_vector<int> dkeys(keys);
  thrustsim::sort(dkeys.begin(), dkeys.end());
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(dkeys.to_host(), sorted);

  std::vector<int> vals(keys.size());
  std::iota(vals.begin(), vals.end(), 0);
  device_vector<int> dk2(keys), dv2(vals);
  thrustsim::sort_by_key(dk2.begin(), dk2.end(), dv2.begin());
  const auto gk = dk2.to_host();
  const auto gv = dv2.to_host();
  for (size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(gk[i], keys[gv[i]]);
}

TEST(ThrustSimAlgorithmTest, CopyIfValueAndStencilForms) {
  device_vector<int> a({-2, 5, -7, 9, 0, 3});
  device_vector<int> out(6);
  auto end = thrustsim::copy_if(a.begin(), a.end(), out.begin(),
                                [](int v) { return v > 0; });
  EXPECT_EQ(end - out.begin(), 3);
  auto h = out.to_host();
  h.resize(3);
  EXPECT_EQ(h, (std::vector<int>{5, 9, 3}));

  device_vector<uint32_t> stencil({1, 0, 0, 1, 1, 0});
  auto end2 = thrustsim::copy_if(a.begin(), a.end(), stencil.begin(),
                                 out.begin(), [](uint32_t s) { return s != 0; });
  EXPECT_EQ(end2 - out.begin(), 3);
  h = out.to_host();
  h.resize(3);
  EXPECT_EQ(h, (std::vector<int>{-2, 9, 0}));
}

TEST(ThrustSimAlgorithmTest, CountIf) {
  device_vector<int> a({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(thrustsim::count_if(a.begin(), a.end(),
                                [](int v) { return v % 2 == 0; }),
            3u);
}

TEST(ThrustSimAlgorithmTest, GatherScatter) {
  device_vector<int> src({10, 20, 30});
  device_vector<uint32_t> map({2, 0, 1});
  device_vector<int> out(3);
  thrustsim::gather(map.begin(), map.end(), src.begin(), out.begin());
  EXPECT_EQ(out.to_host(), (std::vector<int>{30, 10, 20}));
  device_vector<int> out2(3);
  thrustsim::scatter(src.begin(), src.end(), map.begin(), out2.begin());
  EXPECT_EQ(out2.to_host(), (std::vector<int>{20, 30, 10}));
}

TEST(ThrustSimAlgorithmTest, ScatterIfWithCountingInput) {
  device_vector<uint32_t> stencil({1, 0, 1, 0, 1});
  device_vector<uint32_t> positions({0, 0, 1, 0, 2});
  device_vector<int> out(3, -1);
  thrustsim::scatter_if(thrustsim::make_counting_iterator<int>(0),
                        thrustsim::make_counting_iterator<int>(5),
                        positions.begin(), stencil.begin(), out.begin());
  EXPECT_EQ(out.to_host(), (std::vector<int>{0, 2, 4}));
}

TEST(ThrustSimAlgorithmTest, ReduceByKey) {
  device_vector<int> keys({1, 1, 2, 2, 2, 5});
  device_vector<int> vals({1, 2, 3, 4, 5, 6});
  device_vector<int> ok(6), ov(6);
  auto ends = thrustsim::reduce_by_key(keys.begin(), keys.end(), vals.begin(),
                                       ok.begin(), ov.begin());
  EXPECT_EQ(ends.first - ok.begin(), 3);
  auto hk = ok.to_host();
  auto hv = ov.to_host();
  hk.resize(3);
  hv.resize(3);
  EXPECT_EQ(hk, (std::vector<int>{1, 2, 5}));
  EXPECT_EQ(hv, (std::vector<int>{3, 12, 6}));
}

TEST(ThrustSimAlgorithmTest, UniqueCompactsSortedRange) {
  device_vector<int> a({1, 1, 2, 3, 3, 3, 9});
  auto end = thrustsim::unique(a.begin(), a.end());
  EXPECT_EQ(end - a.begin(), 4);
  auto h = a.to_host();
  h.resize(4);
  EXPECT_EQ(h, (std::vector<int>{1, 2, 3, 9}));
}

TEST(ThrustSimAlgorithmTest, SequenceAndFill) {
  device_vector<int> a(5);
  thrustsim::sequence(a.begin(), a.end(), 10);
  EXPECT_EQ(a.to_host(), (std::vector<int>{10, 11, 12, 13, 14}));
  thrustsim::fill(a.begin(), a.end(), 9);
  EXPECT_EQ(a.to_host(), (std::vector<int>{9, 9, 9, 9, 9}));
}

TEST(ThrustSimAlgorithmTest, InnerProduct) {
  device_vector<int> a({1, 2, 3});
  device_vector<int> b({4, 5, 6});
  EXPECT_EQ(thrustsim::inner_product(a.begin(), a.end(), b.begin(), 0), 32);
  EXPECT_EQ(thrustsim::inner_product(a.begin(), a.end(), b.begin(), 10), 42);
}

TEST(ThrustSimAlgorithmTest, AdjacentDifference) {
  device_vector<int> a({3, 7, 12, 12, 5});
  device_vector<int> out(5);
  thrustsim::adjacent_difference(a.begin(), a.end(), out.begin());
  EXPECT_EQ(out.to_host(), (std::vector<int>{3, 4, 5, 0, -7}));
}

TEST(ThrustSimAlgorithmTest, EqualRanges) {
  device_vector<int> a({1, 2, 3});
  device_vector<int> b({1, 2, 3});
  device_vector<int> c({1, 9, 3});
  EXPECT_TRUE(thrustsim::equal(a.begin(), a.end(), b.begin()));
  EXPECT_FALSE(thrustsim::equal(a.begin(), a.end(), c.begin()));
}

TEST(ThrustSimAlgorithmTest, MinMaxElement) {
  device_vector<int> a({5, -2, 9, 9, -2, 3});
  auto max_it = thrustsim::max_element(a.begin(), a.end());
  EXPECT_EQ(max_it - a.begin(), 2);  // first occurrence of 9
  auto min_it = thrustsim::min_element(a.begin(), a.end());
  EXPECT_EQ(min_it - a.begin(), 1);  // first occurrence of -2
}

TEST(ThrustSimAlgorithmTest, Replace) {
  device_vector<int> a({1, 2, 1, 3});
  thrustsim::replace(a.begin(), a.end(), 1, 99);
  EXPECT_EQ(a.to_host(), (std::vector<int>{99, 2, 99, 3}));
}

TEST(ThrustSimAlgorithmTest, AllAnyNoneOf) {
  device_vector<int> a({2, 4, 6});
  EXPECT_TRUE(thrustsim::all_of(a.begin(), a.end(),
                                [](int v) { return v % 2 == 0; }));
  EXPECT_TRUE(thrustsim::any_of(a.begin(), a.end(),
                                [](int v) { return v > 5; }));
  EXPECT_FALSE(thrustsim::any_of(a.begin(), a.end(),
                                 [](int v) { return v > 100; }));
  EXPECT_TRUE(thrustsim::none_of(a.begin(), a.end(),
                                 [](int v) { return v < 0; }));
}

TEST(ThrustSimPolicyTest, ParOnTargetsCustomStream) {
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  device_vector<int> a({1, 2, 3});
  device_vector<int> out(3);
  const uint64_t before = stream.now_ns();
  thrustsim::transform(thrustsim::cuda::par.on(stream), a.begin(), a.end(),
                       out.begin(), thrustsim::negate<int>());
  EXPECT_GT(stream.now_ns(), before);
  EXPECT_EQ(out.to_host(), (std::vector<int>{-1, -2, -3}));
}

TEST(ThrustSimPolicyTest, EagerExecutionOneKernelPerCall) {
  // Thrust's execution model: every transform call is one kernel launch.
  device_vector<double> a(std::vector<double>(10000, 1.0));
  device_vector<double> out(10000);
  const auto before = gpusim::Device::Default().Snapshot();
  thrustsim::transform(a.begin(), a.end(), out.begin(),
                       [](double v) { return v + 1; });
  thrustsim::transform(out.begin(), out.end(), out.begin(),
                       [](double v) { return v * 2; });
  thrustsim::transform(out.begin(), out.end(), out.begin(),
                       [](double v) { return v - 3; });
  const auto delta = gpusim::Device::Default().Snapshot().Delta(before);
  EXPECT_EQ(delta.kernels_launched, 3u);
  // Each pass re-reads and re-writes the full array: no fusion.
  EXPECT_EQ(delta.bytes_read, 3u * 10000 * sizeof(double));
}

}  // namespace
