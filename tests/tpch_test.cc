// TPC-H generator and query tests: schema shapes, value domains, and
// backend-vs-reference equality for Q1 and Q6 across all four backends.
#include "tpch/queries.h"

#include <gtest/gtest.h>

#include <set>

#include "backends/backends.h"
#include "core/registry.h"

namespace {

using tpch::Config;

TEST(TpchDateTest, DaysFromDateAnchorsAndArithmetic) {
  EXPECT_EQ(tpch::DaysFromDate(1992, 1, 1), 0);
  EXPECT_EQ(tpch::DaysFromDate(1992, 1, 2), 1);
  EXPECT_EQ(tpch::DaysFromDate(1992, 2, 1), 31);
  EXPECT_EQ(tpch::DaysFromDate(1993, 1, 1), 366);  // 1992 is a leap year
  EXPECT_EQ(tpch::DaysFromDate(1994, 1, 1), 731);
  EXPECT_EQ(tpch::DaysFromDate(1998, 12, 1),
            tpch::DaysFromDate(1998, 11, 30) + 1);
}

TEST(TpchDatagenTest, LineitemShapeAndDomains) {
  Config config;
  config.scale_factor = 0.002;
  const storage::Table t = tpch::GenerateLineitem(config);
  ASSERT_GT(t.num_rows(), 0u);
  // Average 4 lines per order.
  const size_t orders = tpch::NumOrders(config);
  EXPECT_GT(t.num_rows(), 2 * orders);
  EXPECT_LT(t.num_rows(), 7 * orders);

  const auto& qty = t.column("l_quantity").values<double>();
  const auto& disc = t.column("l_discount").values<double>();
  const auto& tax = t.column("l_tax").values<double>();
  const auto& price = t.column("l_extendedprice").values<double>();
  const auto& shipdate = t.column("l_shipdate").values<int32_t>();
  const auto& rf = t.column("l_returnflag").values<int32_t>();
  const auto& ls = t.column("l_linestatus").values<int32_t>();
  const auto& rfls = t.column("l_rfls").values<int32_t>();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_GE(qty[i], 1.0);
    EXPECT_LE(qty[i], 50.0);
    EXPECT_GE(disc[i], 0.0);
    EXPECT_LE(disc[i], 0.10);
    EXPECT_GE(tax[i], 0.0);
    EXPECT_LE(tax[i], 0.08);
    EXPECT_GT(price[i], 0.0);
    EXPECT_GE(shipdate[i], tpch::DaysFromDate(1992, 1, 2));
    EXPECT_LE(shipdate[i], tpch::DaysFromDate(1998, 12, 1));
    EXPECT_GE(rf[i], 0);
    EXPECT_LE(rf[i], 2);
    EXPECT_GE(ls[i], 0);
    EXPECT_LE(ls[i], 1);
    EXPECT_EQ(rfls[i], rf[i] * 2 + ls[i]);
  }
}

TEST(TpchDatagenTest, DeterministicForSameSeed) {
  Config config;
  config.scale_factor = 0.001;
  const storage::Table a = tpch::GenerateLineitem(config);
  const storage::Table b = tpch::GenerateLineitem(config);
  EXPECT_EQ(a.num_rows(), b.num_rows());
  EXPECT_EQ(a.column("l_extendedprice").values<double>(),
            b.column("l_extendedprice").values<double>());
  config.seed = 43;
  const storage::Table c = tpch::GenerateLineitem(config);
  EXPECT_NE(a.column("l_extendedprice").values<double>(),
            c.column("l_extendedprice").values<double>());
}

TEST(TpchDatagenTest, OrdersHaveUniqueKeys) {
  Config config;
  config.scale_factor = 0.001;
  const storage::Table t = tpch::GenerateOrders(config);
  EXPECT_EQ(t.num_rows(), tpch::NumOrders(config));
  const auto& keys = t.column("o_orderkey").values<int32_t>();
  std::set<int32_t> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
}

TEST(TpchDatagenTest, DimensionTables) {
  Config config;
  config.scale_factor = 0.001;
  EXPECT_GT(tpch::GenerateCustomer(config).num_rows(), 100u);
  EXPECT_GT(tpch::GeneratePart(config).num_rows(), 100u);
  EXPECT_GT(tpch::GenerateSupplier(config).num_rows(), 5u);
  EXPECT_EQ(tpch::GenerateNation().num_rows(), 25u);
  EXPECT_EQ(tpch::GenerateRegion().num_rows(), 5u);
}

TEST(TpchQ6FusedTest, FusedHandwrittenMatchesReference) {
  Config config;
  config.scale_factor = 0.002;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  const auto dev = storage::UploadTable(stream, lineitem);
  const double got = tpch::RunQ6FusedHandwritten(stream, dev);
  const double expected = tpch::ReferenceQ6(lineitem);
  EXPECT_NEAR(got, expected, std::abs(expected) * 1e-9 + 1e-6);
}

TEST(TpchQ6FusedTest, FusedVariantUsesFarFewerKernels) {
  Config config;
  config.scale_factor = 0.002;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  core::RegisterBuiltinBackends();
  auto backend = core::BackendRegistry::Instance().Create("Handwritten");
  const auto dev = storage::UploadTable(backend->stream(), lineitem);

  auto before = gpusim::Device::Default().Snapshot();
  tpch::RunQ6(*backend, dev);
  const auto op_chain = gpusim::Device::Default().Snapshot().Delta(before);

  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  before = gpusim::Device::Default().Snapshot();
  tpch::RunQ6FusedHandwritten(stream, dev);
  const auto fused = gpusim::Device::Default().Snapshot().Delta(before);

  EXPECT_LT(fused.kernels_launched, op_chain.kernels_launched);
  EXPECT_LT(fused.bytes_read, op_chain.bytes_read);
}

TEST(TpchQ3ReferenceTest, LimitAndOrdering) {
  Config config;
  config.scale_factor = 0.002;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table customer = tpch::GenerateCustomer(config);
  const auto rows = tpch::ReferenceQ3(customer, orders, lineitem);
  EXPECT_LE(rows.size(), 10u);
  EXPECT_GT(rows.size(), 0u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].revenue, rows[i].revenue);
  }
}

TEST(TpchQ4ReferenceTest, CountsAllPriorities) {
  Config config;
  config.scale_factor = 0.002;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const auto rows = tpch::ReferenceQ4(orders, lineitem);
  // Priorities 1..5 all occur at this scale; counts are positive.
  EXPECT_EQ(rows.size(), 5u);
  for (const auto& row : rows) {
    EXPECT_GE(row.orderpriority, 1);
    EXPECT_LE(row.orderpriority, 5);
    EXPECT_GT(row.order_count, 0);
  }
}

TEST(TpchQ6ReferenceTest, SelectsExpectedFraction) {
  Config config;
  config.scale_factor = 0.005;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const double revenue = tpch::ReferenceQ6(lineitem);
  // ~1/7 of the date range * 3/11 discounts * ~1/2 quantities match; the
  // revenue must be positive and well below the full-table product sum.
  EXPECT_GT(revenue, 0.0);
  double total = 0.0;
  const auto& price = lineitem.column("l_extendedprice").values<double>();
  const auto& disc = lineitem.column("l_discount").values<double>();
  for (size_t i = 0; i < price.size(); ++i) total += price[i] * disc[i];
  EXPECT_LT(revenue, total * 0.15);
}

class TpchQueryTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    core::RegisterBuiltinBackends();
    config_.scale_factor = 0.002;
    lineitem_ = new storage::Table(tpch::GenerateLineitem(config_));
    orders_ = new storage::Table(tpch::GenerateOrders(config_));
    customer_ = new storage::Table(tpch::GenerateCustomer(config_));
  }
  static void TearDownTestSuite() {
    delete lineitem_;
    delete orders_;
    delete customer_;
    lineitem_ = nullptr;
    orders_ = nullptr;
    customer_ = nullptr;
  }

  static Config config_;
  static storage::Table* lineitem_;
  static storage::Table* orders_;
  static storage::Table* customer_;
};

Config TpchQueryTest::config_;
storage::Table* TpchQueryTest::lineitem_ = nullptr;
storage::Table* TpchQueryTest::orders_ = nullptr;
storage::Table* TpchQueryTest::customer_ = nullptr;

INSTANTIATE_TEST_SUITE_P(
    AllBackends, TpchQueryTest,
    ::testing::Values(backends::kThrust, backends::kBoostCompute,
                      backends::kArrayFire, backends::kHandwritten),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](char c) { return !isalnum(c); }),
                 name.end());
      return name;
    });

TEST_P(TpchQueryTest, Q6MatchesReference) {
  auto backend = core::BackendRegistry::Instance().Create(GetParam());
  const storage::DeviceTable dev =
      storage::UploadTable(backend->stream(), *lineitem_);
  const double got = tpch::RunQ6(*backend, dev);
  const double expected = tpch::ReferenceQ6(*lineitem_);
  EXPECT_NEAR(got, expected, std::abs(expected) * 1e-9 + 1e-6);
}

TEST_P(TpchQueryTest, Q1MatchesReference) {
  auto backend = core::BackendRegistry::Instance().Create(GetParam());
  const storage::DeviceTable dev =
      storage::UploadTable(backend->stream(), *lineitem_);
  const auto got = tpch::RunQ1(*backend, dev);
  const auto expected = tpch::ReferenceQ1(*lineitem_);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].returnflag, expected[i].returnflag);
    EXPECT_EQ(got[i].linestatus, expected[i].linestatus);
    EXPECT_EQ(got[i].count_order, expected[i].count_order);
    const double tol = 1e-6 * std::abs(expected[i].sum_charge) + 1e-6;
    EXPECT_NEAR(got[i].sum_qty, expected[i].sum_qty, tol);
    EXPECT_NEAR(got[i].sum_base_price, expected[i].sum_base_price, tol);
    EXPECT_NEAR(got[i].sum_disc_price, expected[i].sum_disc_price, tol);
    EXPECT_NEAR(got[i].sum_charge, expected[i].sum_charge, tol);
    EXPECT_NEAR(got[i].avg_qty, expected[i].avg_qty, 1e-6);
    EXPECT_NEAR(got[i].avg_price, expected[i].avg_price, 1e-3);
    EXPECT_NEAR(got[i].avg_disc, expected[i].avg_disc, 1e-9);
  }
}

TEST_P(TpchQueryTest, Q3MatchesReference) {
  auto backend = core::BackendRegistry::Instance().Create(GetParam());
  const auto dev_li = storage::UploadTable(backend->stream(), *lineitem_);
  const auto dev_ord = storage::UploadTable(backend->stream(), *orders_);
  const auto dev_cust = storage::UploadTable(backend->stream(), *customer_);
  const auto got = tpch::RunQ3(*backend, dev_cust, dev_ord, dev_li);
  const auto expected = tpch::ReferenceQ3(*customer_, *orders_, *lineitem_);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].orderkey, expected[i].orderkey) << "rank " << i;
    EXPECT_NEAR(got[i].revenue, expected[i].revenue,
                1e-9 * std::abs(expected[i].revenue) + 1e-6);
  }
}

TEST_P(TpchQueryTest, Q3ForcedNestedLoopsAgreesWithAuto) {
  auto backend = core::BackendRegistry::Instance().Create(GetParam());
  const auto dev_li = storage::UploadTable(backend->stream(), *lineitem_);
  const auto dev_ord = storage::UploadTable(backend->stream(), *orders_);
  const auto dev_cust = storage::UploadTable(backend->stream(), *customer_);
  const auto nlj = tpch::RunQ3(*backend, dev_cust, dev_ord, dev_li,
                               tpch::Q3Params(), tpch::JoinStrategy::kNestedLoops);
  const auto auto_join = tpch::RunQ3(*backend, dev_cust, dev_ord, dev_li,
                                     tpch::Q3Params(), tpch::JoinStrategy::kAuto);
  ASSERT_EQ(nlj.size(), auto_join.size());
  for (size_t i = 0; i < nlj.size(); ++i) {
    EXPECT_EQ(nlj[i].orderkey, auto_join[i].orderkey);
  }
}

TEST_P(TpchQueryTest, Q4MatchesReference) {
  auto backend = core::BackendRegistry::Instance().Create(GetParam());
  const auto dev_li = storage::UploadTable(backend->stream(), *lineitem_);
  const auto dev_ord = storage::UploadTable(backend->stream(), *orders_);
  const auto got = tpch::RunQ4(*backend, dev_ord, dev_li);
  const auto expected = tpch::ReferenceQ4(*orders_, *lineitem_);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].orderpriority, expected[i].orderpriority);
    EXPECT_EQ(got[i].order_count, expected[i].order_count);
  }
}

TEST_P(TpchQueryTest, Q14MatchesReference) {
  auto backend = core::BackendRegistry::Instance().Create(GetParam());
  // Library NLJ over the full part table is O(|part| * |lineitem'|); keep
  // the ArrayFire per-row where() variant affordable by joining at this SF.
  const auto dev_li = storage::UploadTable(backend->stream(), *lineitem_);
  const storage::Table part = tpch::GeneratePart(config_);
  const auto dev_part = storage::UploadTable(backend->stream(), part);
  const double got = tpch::RunQ14(*backend, dev_part, dev_li);
  const double expected = tpch::ReferenceQ14(part, *lineitem_);
  EXPECT_NEAR(got, expected, 1e-9 * std::abs(expected) + 1e-9);
  EXPECT_GT(got, 0.0);
  EXPECT_LT(got, 100.0);
}

TEST_P(TpchQueryTest, Q6SelectivityParametersMatter) {
  auto backend = core::BackendRegistry::Instance().Create(GetParam());
  const storage::DeviceTable dev =
      storage::UploadTable(backend->stream(), *lineitem_);
  tpch::Q6Params wide;
  wide.date_lo = tpch::DaysFromDate(1992, 1, 1);
  wide.date_hi = tpch::DaysFromDate(1999, 12, 31);
  wide.discount_lo = 0.0;
  wide.discount_hi = 1.0;
  wide.quantity_hi = 100.0;
  const double everything = tpch::RunQ6(*backend, dev, wide);
  const double narrow = tpch::RunQ6(*backend, dev);
  EXPECT_GT(everything, narrow);
  EXPECT_NEAR(everything, tpch::ReferenceQ6(*lineitem_, wide),
              std::abs(everything) * 1e-9 + 1e-6);
}

}  // namespace
