// Property tests for the device algorithm primitives against scalar
// references, swept over sizes that exercise tile boundaries and multi-level
// recursion.
#include "gpusim/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "gpusim/device.h"

namespace gpusim {
namespace {

class AlgorithmsSizeTest : public ::testing::TestWithParam<size_t> {
 protected:
  AlgorithmsSizeTest() : stream_(Device::Default(), ApiProfile::Cuda()) {}

  std::vector<int32_t> RandomInts(size_t n, int32_t lo, int32_t hi,
                                  uint32_t seed = 1) {
    std::mt19937 rng(seed + static_cast<uint32_t>(n));
    std::uniform_int_distribution<int32_t> dist(lo, hi);
    std::vector<int32_t> out(n);
    for (auto& v : out) v = dist(rng);
    return out;
  }

  Stream stream_;
};

// Sizes straddle the 1024-element tile: sub-tile, exact, off-by-one, and
// multi-level (tile-of-tiles) cases.
INSTANTIATE_TEST_SUITE_P(Sizes, AlgorithmsSizeTest,
                         ::testing::Values(1, 2, 7, 1023, 1024, 1025, 4096,
                                           65536, 1048577));

TEST_P(AlgorithmsSizeTest, ReduceMatchesStdAccumulate) {
  const size_t n = GetParam();
  const auto host = RandomInts(n, -100, 100);
  auto dev = ToDevice(stream_, host);
  const int64_t expected =
      std::accumulate(host.begin(), host.end(), int64_t{0});
  // Reduce in int64 to avoid overflow: upconvert on upload.
  std::vector<int64_t> wide(host.begin(), host.end());
  auto dev64 = ToDevice(stream_, wide);
  const int64_t got =
      Reduce(stream_, dev64.data(), n, int64_t{0},
             [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(got, expected);
}

TEST_P(AlgorithmsSizeTest, ExclusiveScanMatchesReference) {
  const size_t n = GetParam();
  const auto host = RandomInts(n, 0, 10);
  auto in = ToDevice(stream_, host);
  DeviceArray<int32_t> out(n, stream_.device());
  ExclusiveScan(stream_, in.data(), out.data(), n, int32_t{0},
                [](int32_t a, int32_t b) { return a + b; });
  const auto got = ToHost(stream_, out);
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], acc) << "at index " << i;
    acc += host[i];
  }
}

TEST_P(AlgorithmsSizeTest, InclusiveScanMatchesReference) {
  const size_t n = GetParam();
  const auto host = RandomInts(n, 0, 10);
  auto in = ToDevice(stream_, host);
  DeviceArray<int32_t> out(n, stream_.device());
  InclusiveScan(stream_, in.data(), out.data(), n,
                [](int32_t a, int32_t b) { return a + b; });
  const auto got = ToHost(stream_, out);
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += host[i];
    EXPECT_EQ(got[i], acc) << "at index " << i;
  }
}

TEST_P(AlgorithmsSizeTest, RadixSortKeysSortsInt32) {
  const size_t n = GetParam();
  auto host = RandomInts(n, std::numeric_limits<int32_t>::min(),
                         std::numeric_limits<int32_t>::max());
  auto dev = ToDevice(stream_, host);
  RadixSortKeys(stream_, dev.data(), n);
  auto got = ToHost(stream_, dev);
  std::sort(host.begin(), host.end());
  EXPECT_EQ(got, host);
}

TEST_P(AlgorithmsSizeTest, RadixSortPairsKeepsPairsTogether) {
  const size_t n = GetParam();
  const auto keys = RandomInts(n, 0, 1000);
  std::vector<uint32_t> vals(n);
  std::iota(vals.begin(), vals.end(), 0u);
  auto dkeys = ToDevice(stream_, keys);
  auto dvals = ToDevice(stream_, vals);
  RadixSortPairs(stream_, dkeys.data(), dvals.data(), n);
  const auto gk = ToHost(stream_, dkeys);
  const auto gv = ToHost(stream_, dvals);
  EXPECT_TRUE(std::is_sorted(gk.begin(), gk.end()));
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(gk[i], keys[gv[i]]) << "pair broken at " << i;
  }
  // LSD radix with per-pass stable scatter is stable overall.
  for (size_t i = 1; i < n; ++i) {
    if (gk[i] == gk[i - 1]) {
      EXPECT_LT(gv[i - 1], gv[i]);
    }
  }
}

TEST_P(AlgorithmsSizeTest, CopyIfMatchesReference) {
  const size_t n = GetParam();
  const auto host = RandomInts(n, -50, 50);
  auto in = ToDevice(stream_, host);
  DeviceArray<int32_t> out(n, stream_.device());
  const auto pred = [](int32_t v) { return v > 0; };
  const size_t count = CopyIf(stream_, in.data(), n, out.data(), pred);
  std::vector<int32_t> expected;
  std::copy_if(host.begin(), host.end(), std::back_inserter(expected), pred);
  ASSERT_EQ(count, expected.size());
  auto got = ToHost(stream_, out);
  got.resize(count);
  EXPECT_EQ(got, expected);  // compaction is order-preserving
}

TEST_P(AlgorithmsSizeTest, CountIfMatchesReference) {
  const size_t n = GetParam();
  const auto host = RandomInts(n, -50, 50);
  auto in = ToDevice(stream_, host);
  const auto pred = [](int32_t v) { return v % 3 == 0; };
  const size_t got = CountIf(stream_, in.data(), n, pred);
  const size_t expected = std::count_if(host.begin(), host.end(), pred);
  EXPECT_EQ(got, expected);
}

TEST_P(AlgorithmsSizeTest, ReduceByKeyMatchesReference) {
  const size_t n = GetParam();
  auto keys = RandomInts(n, 0, 20);
  std::sort(keys.begin(), keys.end());
  const auto vals = RandomInts(n, -5, 5, /*seed=*/7);
  std::vector<int64_t> wide(vals.begin(), vals.end());
  auto dk = ToDevice(stream_, keys);
  auto dv = ToDevice(stream_, wide);
  DeviceArray<int32_t> ok(n, stream_.device());
  DeviceArray<int64_t> ov(n, stream_.device());
  const size_t groups =
      ReduceByKey(stream_, dk.data(), dv.data(), n, ok.data(), ov.data(),
                  [](int64_t a, int64_t b) { return a + b; });

  // Scalar reference.
  std::vector<int32_t> rk;
  std::vector<int64_t> rv;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || keys[i] != keys[i - 1]) {
      rk.push_back(keys[i]);
      rv.push_back(0);
    }
    rv.back() += wide[i];
  }
  ASSERT_EQ(groups, rk.size());
  auto gk = ToHost(stream_, ok);
  auto gv = ToHost(stream_, ov);
  gk.resize(groups);
  gv.resize(groups);
  EXPECT_EQ(gk, rk);
  EXPECT_EQ(gv, rv);
}

TEST_P(AlgorithmsSizeTest, UniqueSortedMatchesStdUnique) {
  const size_t n = GetParam();
  auto host = RandomInts(n, 0, 30);
  std::sort(host.begin(), host.end());
  auto in = ToDevice(stream_, host);
  DeviceArray<int32_t> out(n, stream_.device());
  const size_t count = UniqueSorted(stream_, in.data(), n, out.data());
  std::vector<int32_t> expected = host;
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  ASSERT_EQ(count, expected.size());
  auto got = ToHost(stream_, out);
  got.resize(count);
  EXPECT_EQ(got, expected);
}

class AlgorithmsTest : public ::testing::Test {
 protected:
  AlgorithmsTest() : stream_(Device::Default(), ApiProfile::Cuda()) {}
  Stream stream_;
};

TEST_F(AlgorithmsTest, FillAndSequence) {
  DeviceArray<int32_t> a(100, stream_.device());
  Fill(stream_, a.data(), 100, int32_t{42});
  for (int32_t v : ToHost(stream_, a)) EXPECT_EQ(v, 42);
  Sequence(stream_, a.data(), 100, int32_t{5}, int32_t{3});
  const auto got = ToHost(stream_, a);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(got[i], 5 + 3 * (int32_t)i);
}

TEST_F(AlgorithmsTest, ReduceEmptyReturnsInit) {
  const int32_t got = Reduce(stream_, static_cast<const int32_t*>(nullptr), 0,
                             int32_t{17},
                             [](int32_t a, int32_t b) { return a + b; });
  EXPECT_EQ(got, 17);
}

TEST_F(AlgorithmsTest, ExclusiveScanWithNonzeroInit) {
  std::vector<int32_t> host{1, 2, 3, 4};
  auto in = ToDevice(stream_, host);
  DeviceArray<int32_t> out(4, stream_.device());
  ExclusiveScan(stream_, in.data(), out.data(), 4, int32_t{100},
                [](int32_t a, int32_t b) { return a + b; });
  EXPECT_EQ(ToHost(stream_, out), (std::vector<int32_t>{100, 101, 103, 106}));
}

TEST_F(AlgorithmsTest, RadixSortFloatHandlesNegativesAndOrdering) {
  std::vector<float> host{3.5f, -1.25f, 0.0f, -100.0f, 2.0f, -0.5f, 1e10f,
                          -1e10f};
  auto dev = ToDevice(stream_, host);
  RadixSortKeys(stream_, dev.data(), host.size());
  auto got = ToHost(stream_, dev);
  std::sort(host.begin(), host.end());
  EXPECT_EQ(got, host);
}

TEST_F(AlgorithmsTest, RadixSortDoubleAndInt64) {
  std::vector<double> d{1.5, -2.5, 0.25, -0.125, 1e300, -1e300};
  auto dd = ToDevice(stream_, d);
  RadixSortKeys(stream_, dd.data(), d.size());
  auto gd = ToHost(stream_, dd);
  std::sort(d.begin(), d.end());
  EXPECT_EQ(gd, d);

  std::vector<int64_t> i{5, -5, (int64_t)1 << 40, -((int64_t)1 << 40), 0};
  auto di = ToDevice(stream_, i);
  RadixSortKeys(stream_, di.data(), i.size());
  auto gi = ToHost(stream_, di);
  std::sort(i.begin(), i.end());
  EXPECT_EQ(gi, i);
}

TEST_F(AlgorithmsTest, RadixTraitsRoundtripAndOrderPreserving) {
  EXPECT_EQ(RadixTraits<int32_t>::Decode(RadixTraits<int32_t>::Encode(-7)),
            -7);
  EXPECT_LT(RadixTraits<int32_t>::Encode(-7), RadixTraits<int32_t>::Encode(7));
  EXPECT_EQ(RadixTraits<float>::Decode(RadixTraits<float>::Encode(-2.5f)),
            -2.5f);
  EXPECT_LT(RadixTraits<float>::Encode(-2.5f),
            RadixTraits<float>::Encode(-1.0f));
  EXPECT_LT(RadixTraits<double>::Encode(-1.0), RadixTraits<double>::Encode(0.0));
  EXPECT_LT(RadixTraits<double>::Encode(0.0), RadixTraits<double>::Encode(1.0));
}

TEST_F(AlgorithmsTest, GatherScatterRoundtrip) {
  std::vector<double> src{10, 20, 30, 40, 50};
  std::vector<uint32_t> map{4, 3, 2, 1, 0};
  auto dsrc = ToDevice(stream_, src);
  auto dmap = ToDevice(stream_, map);
  DeviceArray<double> tmp(5, stream_.device());
  Gather(stream_, dmap.data(), 5, dsrc.data(), tmp.data());
  EXPECT_EQ(ToHost(stream_, tmp), (std::vector<double>{50, 40, 30, 20, 10}));
  DeviceArray<double> back(5, stream_.device());
  Scatter(stream_, tmp.data(), dmap.data(), 5, back.data());
  EXPECT_EQ(ToHost(stream_, back), src);
}

TEST_F(AlgorithmsTest, SetIntersectSortedMatchesStdSetIntersection) {
  std::vector<int32_t> a{1, 3, 5, 7, 9, 11};
  std::vector<int32_t> b{2, 3, 5, 8, 11, 20};
  auto da = ToDevice(stream_, a);
  auto db = ToDevice(stream_, b);
  DeviceArray<int32_t> out(a.size(), stream_.device());
  const size_t count = SetIntersectSorted(stream_, da.data(), a.size(),
                                          db.data(), b.size(), out.data());
  std::vector<int32_t> expected;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected));
  ASSERT_EQ(count, expected.size());
  auto got = ToHost(stream_, out);
  got.resize(count);
  EXPECT_EQ(got, expected);
}

TEST_F(AlgorithmsTest, SetIntersectEmptyInputs) {
  std::vector<int32_t> a{1, 2, 3};
  auto da = ToDevice(stream_, a);
  DeviceArray<int32_t> out(3, stream_.device());
  EXPECT_EQ(SetIntersectSorted(stream_, da.data(), 3,
                               static_cast<const int32_t*>(nullptr), 0,
                               out.data()),
            0u);
  EXPECT_EQ(SetIntersectSorted(stream_, static_cast<const int32_t*>(nullptr),
                               0, da.data(), 3, out.data()),
            0u);
}

TEST_F(AlgorithmsTest, BinarySearchContains) {
  std::vector<int32_t> v{2, 4, 6, 8};
  EXPECT_TRUE(BinarySearchContains(v.data(), v.size(), 2));
  EXPECT_TRUE(BinarySearchContains(v.data(), v.size(), 8));
  EXPECT_FALSE(BinarySearchContains(v.data(), v.size(), 1));
  EXPECT_FALSE(BinarySearchContains(v.data(), v.size(), 5));
  EXPECT_FALSE(BinarySearchContains(v.data(), v.size(), 9));
  EXPECT_FALSE(BinarySearchContains(v.data(), size_t{0}, 2));
}

TEST_F(AlgorithmsTest, ScanKernelCountGrowsWithLevels) {
  // One tile: 1 scan kernel. Many tiles: tile scan + recursive scan +
  // uniform add. The counter delta proves the multi-level structure.
  Device& device = stream_.device();
  DeviceArray<int32_t> small_in(100, device), small_out(100, device);
  Fill(stream_, small_in.data(), 100, 1);
  auto before = device.Snapshot();
  ExclusiveScan(stream_, small_in.data(), small_out.data(), 100, 0,
                [](int32_t a, int32_t b) { return a + b; });
  const auto small_kernels =
      device.Snapshot().Delta(before).kernels_launched;

  const size_t big_n = 4096;
  DeviceArray<int32_t> big_in(big_n, device), big_out(big_n, device);
  Fill(stream_, big_in.data(), big_n, 1);
  before = device.Snapshot();
  ExclusiveScan(stream_, big_in.data(), big_out.data(), big_n, 0,
                [](int32_t a, int32_t b) { return a + b; });
  const auto big_kernels = device.Snapshot().Delta(before).kernels_launched;
  EXPECT_GT(big_kernels, small_kernels);
}

}  // namespace
}  // namespace gpusim
