// Multi-device sharded execution tests: DeviceGroup topology routing and
// exchange accounting, Device::Current()/DeviceGuard thread binding, the
// MultiGovernor's per-device no-overtake guarantee, differential correctness
// of RunSharded (forced shard counts x all five queries vs the host
// reference), the 1-device degenerate case's bit-identical simulated
// timeline vs RunGoverned, and exchange-operator pricing in the plan IR.
// Built into the concurrency_tests binary, which CI also runs under
// ThreadSanitizer (the sharded runner spawns one host thread per device).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backends/backends.h"
#include "core/governor.h"
#include "core/registry.h"
#include "gpusim/device.h"
#include "gpusim/device_group.h"
#include "gpusim/fault.h"
#include "gpusim/stream.h"
#include "gpusim/trace.h"
#include "plan/exchange.h"
#include "plan/ir.h"
#include "plan/optimizer.h"
#include "plan/partition.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

using plan::TpchQuery;

// ---------------------------------------------------------------------------
// DeviceGroup: topology, link routing, exchange accounting.

TEST(DeviceGroupTest, PeerIslandsFollowIslandSize) {
  gpusim::GroupTopology topo;
  topo.peer_island_size = 4;
  gpusim::DeviceGroup group(8, topo);
  EXPECT_TRUE(group.IsPeer(0, 3));
  EXPECT_TRUE(group.IsPeer(4, 7));
  EXPECT_FALSE(group.IsPeer(3, 4));  // island boundary
  EXPECT_FALSE(group.IsPeer(0, 0));  // same device is not a peer pair
}

TEST(DeviceGroupTest, LinkRoutesPeerAndViaHostDifferently) {
  gpusim::GroupTopology topo;
  topo.peer_island_size = 2;
  gpusim::DeviceGroup group(4, topo);

  const gpusim::LinkPath peer = group.Link(0, 1);
  EXPECT_TRUE(peer.peer);
  EXPECT_EQ(peer.hops, 1);
  EXPECT_EQ(peer.bandwidth_bps, topo.p2p_bandwidth_bps);

  const gpusim::LinkPath via_host = group.Link(0, 2);
  EXPECT_FALSE(via_host.peer);
  EXPECT_EQ(via_host.hops, 2);
  // Store-and-forward over both PCIe links is slower than either hop alone.
  EXPECT_LT(via_host.bandwidth_bps, peer.bandwidth_bps);

  const gpusim::LinkPath self = group.Link(1, 1);
  EXPECT_TRUE(self.same_device);
  EXPECT_EQ(self.hops, 0);

  // Pricing follows the route: cross-island transfers cost more.
  const uint64_t bytes = 1 << 20;
  EXPECT_LT(group.TransferNs(0, 1, bytes), group.TransferNs(0, 2, bytes));
}

TEST(DeviceGroupTest, ChargeExchangeAdvancesBothStreamsAndCounters) {
  gpusim::GroupTopology topo;
  topo.peer_island_size = 2;
  gpusim::DeviceGroup group(4, topo);
  gpusim::Stream s0(group.device(0));
  gpusim::Stream s1(group.device(1));
  gpusim::Stream s2(group.device(2));

  const uint64_t bytes = 1 << 20;
  const uint64_t t0 = s0.now_ns();
  group.ChargeExchange(0, s0, 1, s1, bytes);  // peer: same island
  const uint64_t peer_ns = s0.now_ns() - t0;
  EXPECT_EQ(peer_ns, group.TransferNs(0, 1, bytes));
  // The destination synchronized on the source's completion.
  EXPECT_GE(s1.now_ns(), s0.now_ns());

  group.ChargeExchange(0, s0, 2, s2, bytes);  // cross island: via host
  EXPECT_EQ(group.ExchangedBytes(0, 1), bytes);
  EXPECT_EQ(group.ExchangedBytes(0, 2), bytes);
  EXPECT_EQ(group.ExchangedBytes(1, 0), 0u);

  // Counters land on both ends, split by route.
  EXPECT_EQ(group.device(0).counters().bytes_p2p.load(), bytes);
  EXPECT_EQ(group.device(1).counters().bytes_p2p.load(), bytes);
  EXPECT_EQ(group.device(0).counters().bytes_via_host.load(), bytes);
  EXPECT_EQ(group.device(2).counters().bytes_via_host.load(), bytes);
  EXPECT_EQ(group.device(0).counters().exchanges.load(), 2u);
}

TEST(DeviceGroupTest, ChargeExchangeRejectsForeignStreams) {
  gpusim::DeviceGroup group(2);
  gpusim::Stream s0(group.device(0));
  gpusim::Stream s1(group.device(1));
  EXPECT_THROW(group.ChargeExchange(0, s1, 1, s0, 64), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Device::Current() / DeviceGuard: thread-local binding.

TEST(DeviceGuardTest, CurrentDefaultsToDefaultAndNests) {
  EXPECT_EQ(&gpusim::Device::Current(), &gpusim::Device::Default());
  gpusim::DeviceGroup group(2);
  {
    gpusim::Device::DeviceGuard outer(group.device(0));
    EXPECT_EQ(&gpusim::Device::Current(), &group.device(0));
    {
      gpusim::Device::DeviceGuard inner(group.device(1));
      EXPECT_EQ(&gpusim::Device::Current(), &group.device(1));
    }
    EXPECT_EQ(&gpusim::Device::Current(), &group.device(0));
  }
  EXPECT_EQ(&gpusim::Device::Current(), &gpusim::Device::Default());
}

TEST(DeviceGuardTest, BindingIsPerThread) {
  gpusim::DeviceGroup group(2);
  gpusim::Device::DeviceGuard guard(group.device(0));
  gpusim::Device* seen = nullptr;
  std::thread other([&] { seen = &gpusim::Device::Current(); });
  other.join();
  // The spawning thread's guard does not leak into the new thread.
  EXPECT_EQ(seen, &gpusim::Device::Default());
  EXPECT_EQ(&gpusim::Device::Current(), &group.device(0));
}

TEST(DeviceGuardTest, BackendsBindToCurrentDevice) {
  core::RegisterBuiltinBackends();
  gpusim::DeviceGroup group(2);
  gpusim::Device::DeviceGuard guard(group.device(1));
  const std::unique_ptr<core::Backend> backend =
      core::BackendRegistry::Instance().Create(backends::kHandwritten);
  EXPECT_EQ(&backend->stream().device(), &group.device(1));
}

// ---------------------------------------------------------------------------
// MultiGovernor: per-device admission, no overtake within a device.

TEST(MultiGovernorTest, DevicesAdmitIndependently) {
  gpusim::DeviceProperties props;
  props.global_memory_bytes = 1 << 20;
  gpusim::DeviceGroup group(2, gpusim::GroupTopology(), props);
  core::MultiGovernor governor(group);
  ASSERT_EQ(governor.size(), 2);

  // Fill device 0; device 1 must still grant immediately.
  const core::AdmissionTicket t0 = governor.Admit(0, 1, 1 << 20);
  EXPECT_EQ(t0.decision, core::AdmissionDecision::kGranted);
  const core::AdmissionTicket t1 = governor.Admit(1, 2, 1 << 20);
  EXPECT_EQ(t1.decision, core::AdmissionDecision::kGranted);

  // A second request on the full device 0 times out; device 1's grant was
  // untouched by it.
  const core::AdmissionTicket t2 =
      governor.Admit(0, 3, 1 << 20, /*timeout_ms=*/50);
  EXPECT_EQ(t2.decision, core::AdmissionDecision::kRejected);

  governor.Release(0, 1);
  governor.Release(1, 2);
  const core::GovernorStats total = governor.Stats();
  EXPECT_EQ(total.granted, 2u);
  EXPECT_EQ(total.rejected, 1u);
  EXPECT_EQ(total.released, 2u);
  const std::vector<core::GovernorStats> per = governor.PerDeviceStats();
  ASSERT_EQ(per.size(), 2u);
  EXPECT_EQ(per[0].rejected, 1u);
  EXPECT_EQ(per[1].rejected, 0u);
}

TEST(MultiGovernorTest, NoOvertakeWithinADevice) {
  gpusim::DeviceProperties props;
  props.global_memory_bytes = 1 << 20;
  gpusim::DeviceGroup group(2, gpusim::GroupTopology(), props);
  core::MultiGovernor governor(group);

  // Device 0 is full; two waiters queue in order. When memory frees, the
  // first-queued (large) waiter must win even though the small one would fit
  // sooner — strict FIFO per device.
  ASSERT_TRUE(governor.Admit(0, 1, 1 << 20).admitted());
  std::atomic<int> order{0};
  int large_pos = -1, small_pos = -1;
  std::thread large([&] {
    const core::AdmissionTicket t = governor.Admit(0, 2, 1 << 20);
    if (t.admitted()) large_pos = ++order;
    governor.Release(0, 2);
  });
  // Give the large waiter time to reach the head of the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread small([&] {
    const core::AdmissionTicket t = governor.Admit(0, 3, 16);
    if (t.admitted()) small_pos = ++order;
    governor.Release(0, 3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  governor.Release(0, 1);
  large.join();
  small.join();
  EXPECT_EQ(large_pos, 1);
  EXPECT_EQ(small_pos, 2);
}

// ---------------------------------------------------------------------------
// RunSharded: differential correctness and the degenerate 1-device case.

class MultiDeviceQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::RegisterBuiltinBackends();
    tpch::Config config;
    config.scale_factor = 0.002;
    lineitem_ = new storage::Table(tpch::GenerateLineitem(config));
    orders_ = new storage::Table(tpch::GenerateOrders(config));
    customer_ = new storage::Table(tpch::GenerateCustomer(config));
    part_ = new storage::Table(tpch::GeneratePart(config));
  }
  static void TearDownTestSuite() {
    delete lineitem_;
    delete orders_;
    delete customer_;
    delete part_;
    lineitem_ = orders_ = customer_ = part_ = nullptr;
  }

  plan::TpchHostTables Tables() const {
    plan::TpchHostTables t;
    t.lineitem = lineitem_;
    t.orders = orders_;
    t.customer = customer_;
    t.part = part_;
    return t;
  }

  static void ExpectNear(double got, double want) {
    EXPECT_NEAR(got, want, std::abs(want) * 1e-9 + 1e-6);
  }

  void VerifyAgainstReference(TpchQuery q,
                              const plan::TpchQueryResult& got) const {
    switch (q) {
      case TpchQuery::kQ1: {
        const std::vector<tpch::Q1Row> ref = tpch::ReferenceQ1(*lineitem_);
        ASSERT_EQ(got.q1.size(), ref.size());
        for (size_t i = 0; i < ref.size(); ++i) {
          EXPECT_EQ(got.q1[i].returnflag, ref[i].returnflag);
          EXPECT_EQ(got.q1[i].linestatus, ref[i].linestatus);
          EXPECT_EQ(got.q1[i].count_order, ref[i].count_order);
          ExpectNear(got.q1[i].sum_qty, ref[i].sum_qty);
          ExpectNear(got.q1[i].sum_charge, ref[i].sum_charge);
        }
        break;
      }
      case TpchQuery::kQ3: {
        const std::vector<tpch::Q3Row> ref =
            tpch::ReferenceQ3(*customer_, *orders_, *lineitem_);
        ASSERT_EQ(got.q3.size(), ref.size());
        for (size_t i = 0; i < ref.size(); ++i) {
          EXPECT_EQ(got.q3[i].orderkey, ref[i].orderkey);
          ExpectNear(got.q3[i].revenue, ref[i].revenue);
        }
        break;
      }
      case TpchQuery::kQ4: {
        const std::vector<tpch::Q4Row> ref =
            tpch::ReferenceQ4(*orders_, *lineitem_);
        ASSERT_EQ(got.q4.size(), ref.size());
        for (size_t i = 0; i < ref.size(); ++i) {
          EXPECT_EQ(got.q4[i].orderpriority, ref[i].orderpriority);
          EXPECT_EQ(got.q4[i].order_count, ref[i].order_count);
        }
        break;
      }
      case TpchQuery::kQ6:
        ExpectNear(got.scalar, tpch::ReferenceQ6(*lineitem_));
        break;
      case TpchQuery::kQ14:
        ExpectNear(got.scalar, tpch::ReferenceQ14(*part_, *lineitem_));
        break;
    }
  }

  static storage::Table* lineitem_;
  static storage::Table* orders_;
  static storage::Table* customer_;
  static storage::Table* part_;
};

storage::Table* MultiDeviceQueryTest::lineitem_ = nullptr;
storage::Table* MultiDeviceQueryTest::orders_ = nullptr;
storage::Table* MultiDeviceQueryTest::customer_ = nullptr;
storage::Table* MultiDeviceQueryTest::part_ = nullptr;

constexpr TpchQuery kAllQueries[] = {TpchQuery::kQ1, TpchQuery::kQ3,
                                     TpchQuery::kQ4, TpchQuery::kQ6,
                                     TpchQuery::kQ14};

TEST_F(MultiDeviceQueryTest, AllQueriesMatchReferenceAcrossDeviceCounts) {
  for (const int nd : {1, 2, 4}) {
    for (const TpchQuery q : kAllQueries) {
      SCOPED_TRACE(std::string(plan::TpchQueryName(q)) + " on " +
                   std::to_string(nd) + " device(s)");
      gpusim::DeviceGroup group(nd);
      plan::ShardedRunStats stats;
      const plan::TpchQueryResult result = plan::RunSharded(
          q, Tables(), group, backends::kHandwritten, {}, &stats);
      VerifyAgainstReference(q, result);
      EXPECT_EQ(stats.devices, nd);
      EXPECT_GT(stats.simulated_ns, 0u);
      if (nd > 1) {
        EXPECT_GT(stats.exchange_bytes, 0u);
        EXPECT_EQ(stats.exchange_bytes,
                  stats.exchange_p2p_bytes + stats.exchange_via_host_bytes);
      }
    }
  }
}

TEST_F(MultiDeviceQueryTest, ForcedShardCountsKeepAnswersCorrect) {
  // More shards than devices: each device runs several slices in sequence.
  for (const size_t shards : {3u, 8u}) {
    for (const TpchQuery q : kAllQueries) {
      SCOPED_TRACE(std::string(plan::TpchQueryName(q)) + " with " +
                   std::to_string(shards) + " shards");
      gpusim::DeviceGroup group(2);
      plan::ShardedQueryOptions options;
      options.force_shards = shards;
      plan::ShardedRunStats stats;
      const plan::TpchQueryResult result = plan::RunSharded(
          q, Tables(), group, backends::kHandwritten, options, &stats);
      VerifyAgainstReference(q, result);
      EXPECT_EQ(stats.shards, shards);
    }
  }
}

TEST_F(MultiDeviceQueryTest, OneDeviceTimelineIsBitIdenticalToGoverned) {
  for (const TpchQuery q : kAllQueries) {
    SCOPED_TRACE(plan::TpchQueryName(q));
    gpusim::DeviceGroup sharded_group(1);
    plan::ShardedRunStats stats;
    (void)plan::RunSharded(q, Tables(), sharded_group, backends::kHandwritten,
                           {}, &stats);

    gpusim::DeviceGroup governed_group(1);
    gpusim::Device::DeviceGuard guard(governed_group.device(0));
    const std::unique_ptr<core::Backend> backend =
        core::BackendRegistry::Instance().Create(backends::kHandwritten);
    plan::GovernedRunStats gstats;
    (void)plan::RunGoverned(q, Tables(), *backend, {}, &gstats);

    EXPECT_EQ(stats.simulated_ns, gstats.simulated_ns);
  }
}

TEST_F(MultiDeviceQueryTest, ShardedTimelineIsDeterministic) {
  // Same inputs, fresh groups: the multi-threaded run must charge the exact
  // same simulated makespan both times.
  uint64_t first = 0;
  for (int round = 0; round < 2; ++round) {
    gpusim::DeviceGroup group(4);
    plan::ShardedRunStats stats;
    (void)plan::RunSharded(TpchQuery::kQ1, Tables(), group,
                           backends::kHandwritten, {}, &stats);
    if (round == 0) {
      first = stats.simulated_ns;
    } else {
      EXPECT_EQ(stats.simulated_ns, first);
    }
  }
}

TEST_F(MultiDeviceQueryTest, GovernedShardsRunUnderPerDeviceGrants) {
  gpusim::DeviceGroup group(2);
  core::MultiGovernor governor(group);
  plan::ShardedQueryOptions options;
  options.governor = &governor;
  plan::ShardedRunStats stats;
  const plan::TpchQueryResult result = plan::RunSharded(
      TpchQuery::kQ6, Tables(), group, backends::kHandwritten, options,
      &stats);
  VerifyAgainstReference(TpchQuery::kQ6, result);
  const core::GovernorStats gs = governor.Stats();
  EXPECT_EQ(gs.granted + gs.queued, 2u);  // one admission per device
  EXPECT_EQ(gs.released, 2u);
  for (const plan::DeviceShardStats& d : stats.per_device) {
    EXPECT_GT(d.granted_bytes, 0u);
  }
}

TEST_F(MultiDeviceQueryTest, NonConcurrencySafeBackendIsRejected) {
  gpusim::DeviceGroup group(2);
  EXPECT_THROW(plan::RunSharded(TpchQuery::kQ6, Tables(), group,
                                backends::kArrayFire, {}, nullptr),
               std::invalid_argument);
  // On a single device the same backend is fine (no device threads).
  gpusim::DeviceGroup one(1);
  plan::ShardedRunStats stats;
  const plan::TpchQueryResult result = plan::RunSharded(
      TpchQuery::kQ6, Tables(), one, backends::kArrayFire, {}, &stats);
  VerifyAgainstReference(TpchQuery::kQ6, result);
}

TEST_F(MultiDeviceQueryTest, CrossIslandShardsRouteExchangesViaHost) {
  gpusim::GroupTopology topo;
  topo.peer_island_size = 2;  // devices {0,1} and {2,3} are separate islands
  gpusim::DeviceGroup group(4, topo);
  plan::ShardedRunStats stats;
  (void)plan::RunSharded(TpchQuery::kQ1, Tables(), group,
                         backends::kHandwritten, {}, &stats);
  EXPECT_GT(stats.exchange_p2p_bytes, 0u);       // device 1 -> 0
  EXPECT_GT(stats.exchange_via_host_bytes, 0u);  // devices 2,3 -> 0
}

// ---------------------------------------------------------------------------
// Sharded planning and exchange-operator pricing.

TEST_F(MultiDeviceQueryTest, PlanShardedExecutionPlacesAndPricesEdges) {
  gpusim::GroupTopology topo;
  topo.peer_island_size = 2;
  gpusim::DeviceGroup group(4, topo);
  const plan::ShardedPlanSpec spec = plan::PlanShardedExecution(
      TpchQuery::kQ3, Tables(), group);
  EXPECT_EQ(spec.devices, 4);
  EXPECT_EQ(spec.shards, 4u);
  ASSERT_EQ(spec.placements.size(), 4u);
  for (size_t s = 0; s < spec.placements.size(); ++s) {
    EXPECT_EQ(spec.placements[s].device, static_cast<int>(s));
  }

  size_t scatters = 0, broadcasts = 0, gathers = 0;
  for (const plan::ExchangeEdge& e : spec.edges) {
    switch (e.kind) {
      case plan::ExchangeEdge::Kind::kScatter: ++scatters; break;
      case plan::ExchangeEdge::Kind::kBroadcast: ++broadcasts; break;
      case plan::ExchangeEdge::Kind::kGather: ++gathers; break;
    }
  }
  EXPECT_EQ(scatters, 4u);
  EXPECT_EQ(broadcasts, 8u);  // orders + customer to each of 4 devices
  EXPECT_EQ(gathers, 3u);     // devices 1..3 into device 0
  for (const plan::ExchangeEdge& e : spec.edges) {
    if (e.kind != plan::ExchangeEdge::Kind::kGather) continue;
    EXPECT_EQ(e.peer, e.device == 1);  // only device 1 shares island 0
  }

  // The IR realization prices every edge through the cost estimator.
  plan::OptimizerOptions opt;
  opt.pin_backend = backends::kHandwritten;
  const plan::PhysicalPlan phys = plan::Optimize(spec.exchange_plan, opt);
  ASSERT_EQ(phys.plan.nodes.size(), spec.edges.size());
  for (size_t i = 0; i < phys.plan.nodes.size(); ++i) {
    EXPECT_GT(phys.est_ns[i], 0u) << "edge " << i << " has no estimated cost";
  }

  const std::string text =
      plan::ExplainSharded(spec, group, backends::kHandwritten);
  EXPECT_NE(text.find("shard placement:"), std::string::npos);
  EXPECT_NE(text.find("p2p link"), std::string::npos);
  EXPECT_NE(text.find("via host"), std::string::npos);
  EXPECT_NE(text.find("ExchangeScatter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Device-loss recovery: per-device fault scoping, shard re-placement,
// gather re-routing, and the zero-fault timeline guarantee.

/// Arms a sticky DeviceLost on device `victim` that fires on the Nth kernel
/// launch of any of its streams.
void KillDeviceAtKernel(gpusim::DeviceGroup& group, int victim,
                        uint64_t at_call, uint64_t seed = 17) {
  gpusim::FaultRule rule;
  rule.site = gpusim::FaultSite::kKernel;
  rule.kind = gpusim::FaultKind::kDeviceLost;
  rule.at_call = at_call;
  group.ArmFaultInjector(victim, seed).AddRule(rule);
}

TEST_F(MultiDeviceQueryTest, DeviceLostMidQueryRecoversOnSurvivors) {
  for (const TpchQuery q : kAllQueries) {
    SCOPED_TRACE(plan::TpchQueryName(q));
    gpusim::DeviceGroup group(4);
    KillDeviceAtKernel(group, /*victim=*/2, /*at_call=*/2);
    plan::ShardedQueryOptions options;
    options.force_shards = 8;  // every device owns several slices
    plan::ShardedRunStats stats;
    const plan::TpchQueryResult result = plan::RunSharded(
        q, Tables(), group, backends::kHandwritten, options, &stats);
    VerifyAgainstReference(q, result);
    EXPECT_FALSE(group.IsAlive(2));
    EXPECT_EQ(group.AliveCount(), 3);
    EXPECT_EQ(stats.devices_lost, 1);
    EXPECT_GE(stats.recovery_rounds, 1);
    EXPECT_GT(stats.replaced_shards, 0u);
    bool saw_lost = false;
    for (const plan::DeviceShardStats& d : stats.per_device) {
      if (d.device == 2) saw_lost = d.lost;
    }
    EXPECT_TRUE(saw_lost) << "per-device stats must flag the dead device";
  }
}

TEST_F(MultiDeviceQueryTest, CoordinatorLossMovesGatherToLowestSurvivor) {
  // Killing device 0 forces both the re-placement AND a new gather
  // coordinator (the lowest surviving device).
  gpusim::DeviceGroup group(4);
  KillDeviceAtKernel(group, /*victim=*/0, /*at_call=*/2);
  plan::ShardedQueryOptions options;
  options.force_shards = 8;
  plan::ShardedRunStats stats;
  const plan::TpchQueryResult result = plan::RunSharded(
      TpchQuery::kQ1, Tables(), group, backends::kHandwritten, options,
      &stats);
  VerifyAgainstReference(TpchQuery::kQ1, result);
  EXPECT_FALSE(group.IsAlive(0));
  EXPECT_EQ(stats.devices_lost, 1);
  EXPECT_GT(stats.exchange_bytes, 0u) << "survivors still gather partials";
}

TEST_F(MultiDeviceQueryTest, SuccessiveLossesDegradeToASingleDevice) {
  // Devices 0 and 1 both die; device 2 finishes the whole query alone.
  gpusim::DeviceGroup group(3);
  KillDeviceAtKernel(group, 0, /*at_call=*/2);
  KillDeviceAtKernel(group, 1, /*at_call=*/4);
  plan::ShardedQueryOptions options;
  options.force_shards = 6;
  plan::ShardedRunStats stats;
  const plan::TpchQueryResult result = plan::RunSharded(
      TpchQuery::kQ6, Tables(), group, backends::kHandwritten, options,
      &stats);
  VerifyAgainstReference(TpchQuery::kQ6, result);
  EXPECT_EQ(stats.devices_lost, 2);
  EXPECT_EQ(group.AliveCount(), 1);
  EXPECT_TRUE(group.IsAlive(2));
}

TEST_F(MultiDeviceQueryTest, AllDevicesLostThrowsDeviceLost) {
  gpusim::DeviceGroup group(2);
  KillDeviceAtKernel(group, 0, /*at_call=*/1);
  KillDeviceAtKernel(group, 1, /*at_call=*/1);
  EXPECT_THROW(plan::RunSharded(TpchQuery::kQ6, Tables(), group,
                                backends::kHandwritten, {}, nullptr),
               gpusim::DeviceLost);
  EXPECT_EQ(group.AliveCount(), 0);
}

TEST_F(MultiDeviceQueryTest, PreLostDevicesAreNeverPlacedOn) {
  // A device already dead when the query arrives gets no shards at all —
  // the run starts degraded instead of discovering the corpse mid-flight.
  gpusim::DeviceGroup group(3);
  group.MarkLost(1);
  plan::ShardedRunStats stats;
  const plan::TpchQueryResult result = plan::RunSharded(
      TpchQuery::kQ1, Tables(), group, backends::kHandwritten, {}, &stats);
  VerifyAgainstReference(TpchQuery::kQ1, result);
  EXPECT_EQ(stats.devices_lost, 0) << "nothing died during the run itself";
  for (const plan::DeviceShardStats& d : stats.per_device) {
    EXPECT_NE(d.device, 1) << "dead device must not appear in the run";
  }
}

TEST(DeviceGroupFaultTest, ExchangeFaultFiresBeforeAnyPricing) {
  gpusim::DeviceGroup group(2);
  gpusim::Stream src(group.device(0));
  gpusim::Stream dst(group.device(1));

  gpusim::FaultRule rule;
  rule.site = gpusim::FaultSite::kTransfer;
  rule.kind = gpusim::FaultKind::kTransfer;
  rule.at_call = 1;
  rule.max_fires = 2;
  group.ArmFaultInjector(0, 5).AddRule(rule);

  const uint64_t bytes = 1 << 20;
  const uint64_t src_before = src.now_ns();
  const uint64_t dst_before = dst.now_ns();
  EXPECT_THROW(group.ChargeExchange(0, src, 1, dst, bytes),
               gpusim::TransferFault);
  // A faulted exchange must leave both timelines and all counters untouched.
  EXPECT_EQ(src.now_ns(), src_before);
  EXPECT_EQ(dst.now_ns(), dst_before);
  EXPECT_EQ(group.ExchangedBytes(0, 1), 0u);
  EXPECT_EQ(group.device(0).counters().exchanges.load(), 0u);

  // The replay charges exactly once (max_fires exhausted the transient).
  EXPECT_NO_THROW(group.ChargeExchange(0, src, 1, dst, bytes));
  EXPECT_EQ(src.now_ns() - src_before, group.TransferNs(0, 1, bytes));
  EXPECT_EQ(group.ExchangedBytes(0, 1), bytes);
}

TEST_F(MultiDeviceQueryTest, TransientTransferChaosStillAnswersCorrectly) {
  // Seeded transient TransferFaults on every device, far below the retry
  // budget: the run must recover every fault (executor retry for uploads,
  // gather retry for exchanges) and the answer must stay exact.
  gpusim::DeviceGroup group(4);
  for (int d = 0; d < group.size(); ++d) {
    gpusim::FaultRule rule;
    rule.site = gpusim::FaultSite::kTransfer;
    rule.kind = gpusim::FaultKind::kTransfer;
    rule.probability = 0.05;
    rule.max_fires = 2;
    group.ArmFaultInjector(d, 1234).AddRule(rule);
  }
  plan::ShardedQueryOptions options;
  options.force_shards = 8;
  plan::ShardedRunStats stats;
  const plan::TpchQueryResult result = plan::RunSharded(
      TpchQuery::kQ1, Tables(), group, backends::kHandwritten, options,
      &stats);
  VerifyAgainstReference(TpchQuery::kQ1, result);
  EXPECT_EQ(stats.devices_lost, 0);
  EXPECT_EQ(group.AliveCount(), 4);
}

TEST_F(MultiDeviceQueryTest, ArmedRulelessInjectorsKeepTimelineBitIdentical) {
  // The zero-fault gate: attaching per-device injectors with no rules must
  // not move the simulated timeline by a single nanosecond.
  for (const TpchQuery q : kAllQueries) {
    SCOPED_TRACE(plan::TpchQueryName(q));
    gpusim::DeviceGroup bare(4);
    plan::ShardedRunStats bare_stats;
    (void)plan::RunSharded(q, Tables(), bare, backends::kHandwritten, {},
                           &bare_stats);

    gpusim::DeviceGroup armed(4);
    for (int d = 0; d < armed.size(); ++d) armed.ArmFaultInjector(d, 99);
    plan::ShardedRunStats armed_stats;
    (void)plan::RunSharded(q, Tables(), armed, backends::kHandwritten, {},
                           &armed_stats);

    EXPECT_EQ(armed_stats.simulated_ns, bare_stats.simulated_ns);
    EXPECT_EQ(armed_stats.devices_lost, 0);
    EXPECT_EQ(armed_stats.recovery_rounds, 0);
    EXPECT_GT(armed.fault_injector(0)->stats().checks, 0u);
  }
}

TEST_F(MultiDeviceQueryTest, DegradedRunsAreDeterministic) {
  // Same fault schedule, fresh groups: identical degraded placement and
  // identical simulated makespan.
  uint64_t first_ns = 0;
  size_t first_replaced = 0;
  for (int round = 0; round < 2; ++round) {
    gpusim::DeviceGroup group(4);
    KillDeviceAtKernel(group, 1, /*at_call=*/3);
    plan::ShardedQueryOptions options;
    options.force_shards = 8;
    plan::ShardedRunStats stats;
    (void)plan::RunSharded(TpchQuery::kQ6, Tables(), group,
                           backends::kHandwritten, options, &stats);
    if (round == 0) {
      first_ns = stats.simulated_ns;
      first_replaced = stats.replaced_shards;
    } else {
      EXPECT_EQ(stats.simulated_ns, first_ns);
      EXPECT_EQ(stats.replaced_shards, first_replaced);
    }
  }
}

// ---------------------------------------------------------------------------
// Device lifecycle: the Lost -> Probing -> Readmitting -> Alive machine.

TEST(DeviceLifecycleTest, StateMachineWalksLostResetProbeReadmit) {
  gpusim::DeviceGroup group(2);
  EXPECT_EQ(group.state(1), gpusim::DeviceState::kAlive);

  group.MarkLost(1);
  EXPECT_EQ(group.state(1), gpusim::DeviceState::kLost);
  EXPECT_FALSE(group.IsAlive(1));

  EXPECT_TRUE(group.MarkReset(1));
  EXPECT_EQ(group.state(1), gpusim::DeviceState::kProbing);
  EXPECT_FALSE(group.IsAlive(1)) << "probing devices are not schedulable yet";
  ASSERT_EQ(group.ProbingDevices(), std::vector<int>{1});

  EXPECT_TRUE(group.Probe(1));
  EXPECT_EQ(group.state(1), gpusim::DeviceState::kReadmitting);

  EXPECT_TRUE(group.CompleteReadmission(1));
  EXPECT_EQ(group.state(1), gpusim::DeviceState::kAlive);
  EXPECT_TRUE(group.IsAlive(1));
  EXPECT_EQ(group.AliveCount(), 2);

  const gpusim::FleetStats fs = group.fleet_stats();
  EXPECT_EQ(fs.losses, 1u);
  EXPECT_EQ(fs.resets, 1u);
  EXPECT_EQ(fs.probes, 1u);
  EXPECT_EQ(fs.probe_failures, 0u);
  EXPECT_EQ(fs.readmissions, 1u);

  const std::vector<gpusim::LifecycleEvent> log = group.lifecycle_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].kind, gpusim::LifecycleEvent::Kind::kLost);
  EXPECT_EQ(log[1].kind, gpusim::LifecycleEvent::Kind::kReset);
  EXPECT_EQ(log[2].kind, gpusim::LifecycleEvent::Kind::kProbeOk);
  EXPECT_EQ(log[3].kind, gpusim::LifecycleEvent::Kind::kReadmitted);
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].device, 1);
    EXPECT_EQ(log[i].sequence, i);
  }
  EXPECT_STREQ(gpusim::DeviceStateName(gpusim::DeviceState::kProbing),
               "probing");
  EXPECT_STREQ(
      gpusim::LifecycleEventName(gpusim::LifecycleEvent::Kind::kReadmitted),
      "device_readmitted");
}

TEST(DeviceLifecycleTest, TransitionsRejectWrongSourceStates) {
  gpusim::DeviceGroup group(2);
  EXPECT_FALSE(group.MarkReset(0)) << "only a Lost device can reset";
  EXPECT_FALSE(group.Probe(0)) << "only a Probing device can probe";
  EXPECT_FALSE(group.CompleteReadmission(0))
      << "only a Readmitting device can rejoin";
  EXPECT_EQ(group.state(0), gpusim::DeviceState::kAlive);

  group.MarkLost(0);
  group.MarkLost(0);  // idempotent
  EXPECT_EQ(group.fleet_stats().losses, 1u);
  EXPECT_FALSE(group.CompleteReadmission(0)) << "Lost cannot skip the probe";
  EXPECT_EQ(group.state(0), gpusim::DeviceState::kLost);
}

TEST(DeviceLifecycleTest, ProbeFailsThenSucceedsAfterSecondReset) {
  // A one-shot DeviceLost scoped to the probe stream: the first half-open
  // probe fires it and throws the device back to Lost; after a second reset
  // the probe passes and the device readmits.
  gpusim::DeviceGroup group(2);
  gpusim::FaultRule rule;
  rule.site = gpusim::FaultSite::kKernel;
  rule.kind = gpusim::FaultKind::kDeviceLost;
  rule.stream_label = "probe";
  rule.at_call = 1;
  rule.max_fires = 1;
  group.ArmFaultInjector(1, 7).AddRule(rule);

  group.MarkLost(1);
  ASSERT_TRUE(group.MarkReset(1));
  EXPECT_FALSE(group.Probe(1)) << "the armed probe-scoped kill must fire";
  EXPECT_EQ(group.state(1), gpusim::DeviceState::kLost);
  EXPECT_EQ(group.fleet_stats().probe_failures, 1u);

  ASSERT_TRUE(group.MarkReset(1));
  EXPECT_TRUE(group.Probe(1)) << "the kill was one-shot; the retry passes";
  EXPECT_TRUE(group.CompleteReadmission(1));
  EXPECT_TRUE(group.IsAlive(1));
  EXPECT_EQ(group.fleet_stats().probes, 2u);
  EXPECT_EQ(group.fleet_stats().readmissions, 1u);
}

TEST(DeviceLifecycleTest, ArmAutoResetTicksLostDevicesBackDeterministically) {
  // The auto-reset policy is a pure function of the seed: two groups armed
  // identically tick their lost device back on the same round.
  int first_ticks = -1;
  for (int round = 0; round < 2; ++round) {
    gpusim::DeviceGroup group(4);
    group.ArmAutoReset(/*seed=*/21, /*min_ticks=*/1, /*max_ticks=*/3);
    group.MarkLost(2);
    int ticks = 0;
    for (; ticks < 4; ++ticks) {
      const std::vector<int> reset = group.TickLostDevices();
      if (!reset.empty()) {
        EXPECT_EQ(reset, std::vector<int>{2});
        break;
      }
    }
    EXPECT_LT(ticks, 4) << "the device must reset within max_ticks";
    EXPECT_EQ(group.state(2), gpusim::DeviceState::kProbing);
    if (round == 0) {
      first_ticks = ticks;
    } else {
      EXPECT_EQ(ticks, first_ticks);
    }
  }
}

TEST(DeviceLifecycleTest, TransitionsLandInFaultTraceCategory) {
  gpusim::DeviceGroup group(2);
  gpusim::Tracer tracer;
  group.device(1).set_tracer(&tracer);
  group.MarkLost(1);
  group.MarkReset(1);
  ASSERT_TRUE(group.Probe(1));
  group.CompleteReadmission(1);
  group.device(1).set_tracer(nullptr);

  std::vector<std::string> fault_events;
  bool saw_probe_kernel = false;
  for (const gpusim::TraceEvent& ev : tracer.events()) {
    if (ev.category == "fault") fault_events.push_back(ev.name);
    if (ev.category == "kernel" && ev.name == "fleet_probe") {
      saw_probe_kernel = true;
    }
  }
  const std::vector<std::string> want = {"device_lost", "device_reset",
                                         "probe_ok", "device_readmitted"};
  EXPECT_EQ(fault_events, want);
  EXPECT_TRUE(saw_probe_kernel) << "the half-open probe charges a kernel";
}

// ---------------------------------------------------------------------------
// Readmission through RunSharded: checkpoint reuse, re-placement onto the
// recovered device, and the determinism goldens.

/// One-shot variant of KillDeviceAtKernel for readmission sequences: the
/// rule cannot re-fire on the rerun's fresh streams after the reset clears
/// the sticky loss.
void KillDeviceOnceAtKernel(gpusim::DeviceGroup& group, int victim,
                            uint64_t at_call, uint64_t seed = 17) {
  gpusim::FaultRule rule;
  rule.site = gpusim::FaultSite::kKernel;
  rule.kind = gpusim::FaultKind::kDeviceLost;
  rule.at_call = at_call;
  rule.max_fires = 1;
  group.ArmFaultInjector(victim, seed).AddRule(rule);
}

TEST_F(MultiDeviceQueryTest, ResetDeviceReadmitsOnNextRun) {
  gpusim::DeviceGroup group(4);
  KillDeviceOnceAtKernel(group, /*victim=*/2, /*at_call=*/2);
  plan::ShardedQueryOptions options;
  options.force_shards = 8;

  plan::ShardedRunStats degraded;
  VerifyAgainstReference(
      TpchQuery::kQ6, plan::RunSharded(TpchQuery::kQ6, Tables(), group,
                                       backends::kHandwritten, options,
                                       &degraded));
  ASSERT_FALSE(group.IsAlive(2));
  EXPECT_EQ(degraded.devices_readmitted, 0);

  ASSERT_TRUE(group.MarkReset(2));
  plan::ShardedRunStats recovered;
  VerifyAgainstReference(
      TpchQuery::kQ6, plan::RunSharded(TpchQuery::kQ6, Tables(), group,
                                       backends::kHandwritten, options,
                                       &recovered));
  EXPECT_TRUE(group.IsAlive(2)) << "the run-start probe must readmit";
  EXPECT_EQ(recovered.devices_readmitted, 1);
  EXPECT_EQ(recovered.devices_lost, 0);
  bool victim_flagged = false;
  for (const plan::DeviceShardStats& d : recovered.per_device) {
    if (d.device == 2) {
      victim_flagged = d.readmitted;
      EXPECT_GT(d.shards, 0u) << "the readmitted device must take work";
    }
  }
  EXPECT_TRUE(victim_flagged);
}

TEST_F(MultiDeviceQueryTest, ReadmittedRunMatchesNeverKilledTimeline) {
  // After readmission the group is whole again: the rerun places exactly
  // like a never-killed group and its simulated makespan is bit-identical.
  plan::ShardedQueryOptions options;
  options.force_shards = 8;
  gpusim::DeviceGroup bare(4);
  plan::ShardedRunStats baseline;
  (void)plan::RunSharded(TpchQuery::kQ1, Tables(), bare,
                         backends::kHandwritten, options, &baseline);

  gpusim::DeviceGroup group(4);
  KillDeviceOnceAtKernel(group, /*victim=*/1, /*at_call=*/2);
  (void)plan::RunSharded(TpchQuery::kQ1, Tables(), group,
                         backends::kHandwritten, options, nullptr);
  ASSERT_TRUE(group.MarkReset(1));
  plan::ShardedRunStats recovered;
  (void)plan::RunSharded(TpchQuery::kQ1, Tables(), group,
                         backends::kHandwritten, options, &recovered);
  EXPECT_EQ(recovered.devices_readmitted, 1);
  EXPECT_EQ(recovered.simulated_ns, baseline.simulated_ns);
}

TEST_F(MultiDeviceQueryTest, ReadmissionSequenceIsDeterministic) {
  // The whole kill -> reset -> readmit -> rerun sequence on two identical
  // groups: same degraded makespan, same recovered makespan, same placement.
  uint64_t first_degraded = 0;
  uint64_t first_recovered = 0;
  std::vector<size_t> first_placement;
  for (int round = 0; round < 2; ++round) {
    gpusim::DeviceGroup group(4);
    KillDeviceOnceAtKernel(group, /*victim=*/3, /*at_call=*/4);
    plan::ShardedQueryOptions options;
    options.force_shards = 8;
    plan::ShardedRunStats degraded;
    (void)plan::RunSharded(TpchQuery::kQ3, Tables(), group,
                           backends::kHandwritten, options, &degraded);
    ASSERT_TRUE(group.MarkReset(3));
    plan::ShardedRunStats recovered;
    (void)plan::RunSharded(TpchQuery::kQ3, Tables(), group,
                           backends::kHandwritten, options, &recovered);
    std::vector<size_t> placement;
    for (const plan::DeviceShardStats& d : recovered.per_device) {
      placement.push_back(d.shards);
    }
    if (round == 0) {
      first_degraded = degraded.simulated_ns;
      first_recovered = recovered.simulated_ns;
      first_placement = placement;
    } else {
      EXPECT_EQ(degraded.simulated_ns, first_degraded);
      EXPECT_EQ(recovered.simulated_ns, first_recovered);
      EXPECT_EQ(placement, first_placement);
    }
  }
}

TEST_F(MultiDeviceQueryTest, CheckpointedSlicesAreReusedNotRecomputed) {
  // Kill late enough that the victim finished a slice first: that slice's
  // host-checkpointed partial merges into the answer, and only the
  // unfinished remainder re-deals.
  gpusim::DeviceGroup group(4);
  KillDeviceOnceAtKernel(group, /*victim=*/1, /*at_call=*/7);
  plan::ShardedQueryOptions options;
  options.force_shards = 8;  // two slices per device
  plan::ShardedRunStats stats;
  VerifyAgainstReference(
      TpchQuery::kQ6, plan::RunSharded(TpchQuery::kQ6, Tables(), group,
                                       backends::kHandwritten, options,
                                       &stats));
  ASSERT_FALSE(group.IsAlive(1));
  EXPECT_GE(stats.checkpointed_slices_reused, 1u);
  // Checkpointed + re-dealt covers exactly the victim's two slices.
  EXPECT_EQ(stats.checkpointed_slices_reused + stats.replaced_shards, 2u);
}

TEST_F(MultiDeviceQueryTest, AutoResetReadmitsTheVictimMidRun) {
  // With the auto-reset policy armed and an immediate threshold, the victim
  // resets at the first round boundary, passes its probe, and takes
  // replacement slices itself — all inside one RunSharded call.
  gpusim::DeviceGroup group(4);
  group.ArmAutoReset(/*seed=*/5, /*min_ticks=*/1, /*max_ticks=*/1);
  KillDeviceOnceAtKernel(group, /*victim=*/2, /*at_call=*/2);
  plan::ShardedQueryOptions options;
  options.force_shards = 8;
  plan::ShardedRunStats stats;
  VerifyAgainstReference(
      TpchQuery::kQ1, plan::RunSharded(TpchQuery::kQ1, Tables(), group,
                                       backends::kHandwritten, options,
                                       &stats));
  EXPECT_EQ(stats.devices_lost, 1);
  EXPECT_EQ(stats.devices_readmitted, 1);
  EXPECT_TRUE(group.IsAlive(2));
  EXPECT_EQ(group.AliveCount(), 4);
}

TEST_F(MultiDeviceQueryTest, ArmedAutoResetKeepsZeroFaultTimelineIdentical) {
  // The lifecycle machinery joins the zero-fault gate: armed injectors plus
  // an armed auto-reset policy must not move a healthy run's timeline.
  for (const TpchQuery q : {TpchQuery::kQ6, TpchQuery::kQ3}) {
    SCOPED_TRACE(plan::TpchQueryName(q));
    gpusim::DeviceGroup bare(4);
    plan::ShardedRunStats bare_stats;
    (void)plan::RunSharded(q, Tables(), bare, backends::kHandwritten, {},
                           &bare_stats);

    gpusim::DeviceGroup armed(4);
    armed.ArmAutoReset(/*seed=*/3);
    for (int d = 0; d < armed.size(); ++d) armed.ArmFaultInjector(d, 99);
    plan::ShardedRunStats armed_stats;
    (void)plan::RunSharded(q, Tables(), armed, backends::kHandwritten, {},
                           &armed_stats);

    EXPECT_EQ(armed_stats.simulated_ns, bare_stats.simulated_ns);
    EXPECT_EQ(armed_stats.devices_readmitted, 0);
    EXPECT_EQ(armed.fleet_stats().probes, 0u);
  }
}

}  // namespace
