// Governed / partitioned query execution tests (plan/partition.h):
// differential correctness of the spill path against the host references for
// all five TPC-H queries at forced partition counts, equivalence of the K==1
// path with the ordinary whole-table run, automatic degradation under a
// constrained capacity, footprint-estimator sanity, and the timing-invariance
// golden for a partitioned plan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/registry.h"
#include "gpusim/device.h"
#include "plan/partition.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace plan {
namespace {

bool Near(double got, double want) {
  return std::abs(got - want) <= std::abs(want) * 1e-9 + 1e-6;
}

/// Restores the default device's capacity (and empties the pool) on exit, so
/// a failing capacity test cannot poison later tests in the binary.
class CapacityGuard {
 public:
  CapacityGuard() : saved_(gpusim::Device::Default().memory_capacity()) {}
  ~CapacityGuard() {
    gpusim::Device::Default().set_memory_capacity(saved_);
    gpusim::Device::Default().TrimPool();
  }

 private:
  size_t saved_;
};

class PartitionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::RegisterBuiltinBackends();
    tpch::Config config;
    config.scale_factor = 0.01;
    lineitem_ = new storage::Table(tpch::GenerateLineitem(config));
    orders_ = new storage::Table(tpch::GenerateOrders(config));
    customer_ = new storage::Table(tpch::GenerateCustomer(config));
    part_ = new storage::Table(tpch::GeneratePart(config));
  }

  static void TearDownTestSuite() {
    delete lineitem_;
    delete orders_;
    delete customer_;
    delete part_;
    lineitem_ = orders_ = customer_ = part_ = nullptr;
  }

  static TpchHostTables Tables() {
    TpchHostTables t;
    t.lineitem = lineitem_;
    t.orders = orders_;
    t.customer = customer_;
    t.part = part_;
    return t;
  }

  static std::unique_ptr<core::Backend> MakeBackend() {
    return core::BackendRegistry::Instance().Create(backends::kHandwritten);
  }

  static TpchQueryResult RunForced(TpchQuery query, size_t k,
                                   GovernedRunStats* stats = nullptr) {
    auto backend = MakeBackend();
    GovernedQueryOptions options;
    options.force_partitions = k;
    return RunGoverned(query, Tables(), *backend, options, stats);
  }

  static void ExpectQ1Match(const std::vector<tpch::Q1Row>& got,
                            const std::vector<tpch::Q1Row>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].returnflag, want[i].returnflag) << "row " << i;
      EXPECT_EQ(got[i].linestatus, want[i].linestatus) << "row " << i;
      EXPECT_EQ(got[i].count_order, want[i].count_order) << "row " << i;
      EXPECT_TRUE(Near(got[i].sum_qty, want[i].sum_qty)) << "row " << i;
      EXPECT_TRUE(Near(got[i].sum_base_price, want[i].sum_base_price))
          << "row " << i;
      EXPECT_TRUE(Near(got[i].sum_disc_price, want[i].sum_disc_price))
          << "row " << i;
      EXPECT_TRUE(Near(got[i].sum_charge, want[i].sum_charge)) << "row " << i;
      EXPECT_TRUE(Near(got[i].avg_qty, want[i].avg_qty)) << "row " << i;
      EXPECT_TRUE(Near(got[i].avg_price, want[i].avg_price)) << "row " << i;
      EXPECT_TRUE(Near(got[i].avg_disc, want[i].avg_disc)) << "row " << i;
    }
  }

  static storage::Table* lineitem_;
  static storage::Table* orders_;
  static storage::Table* customer_;
  static storage::Table* part_;
};

storage::Table* PartitionTest::lineitem_ = nullptr;
storage::Table* PartitionTest::orders_ = nullptr;
storage::Table* PartitionTest::customer_ = nullptr;
storage::Table* PartitionTest::part_ = nullptr;

TEST_F(PartitionTest, Q1PartitionedMatchesReference) {
  GovernedRunStats stats;
  const TpchQueryResult result = RunForced(TpchQuery::kQ1, 4, &stats);
  EXPECT_EQ(stats.partitions, 4u);
  EXPECT_GT(stats.spill_h2d_bytes, 0u);
  ExpectQ1Match(result.q1, tpch::ReferenceQ1(*lineitem_));
}

TEST_F(PartitionTest, Q3PartitionedMatchesReference) {
  const TpchQueryResult result = RunForced(TpchQuery::kQ3, 4);
  const std::vector<tpch::Q3Row> want =
      tpch::ReferenceQ3(*customer_, *orders_, *lineitem_);
  ASSERT_EQ(result.q3.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(result.q3[i].orderkey, want[i].orderkey) << "row " << i;
    EXPECT_TRUE(Near(result.q3[i].revenue, want[i].revenue)) << "row " << i;
  }
}

TEST_F(PartitionTest, Q4PartitionedMatchesReference) {
  const TpchQueryResult result = RunForced(TpchQuery::kQ4, 4);
  const std::vector<tpch::Q4Row> want =
      tpch::ReferenceQ4(*orders_, *lineitem_);
  ASSERT_EQ(result.q4.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(result.q4[i].orderpriority, want[i].orderpriority);
    EXPECT_EQ(result.q4[i].order_count, want[i].order_count);
  }
}

TEST_F(PartitionTest, Q6PartitionedMatchesReference) {
  const TpchQueryResult result = RunForced(TpchQuery::kQ6, 4);
  EXPECT_TRUE(Near(result.scalar, tpch::ReferenceQ6(*lineitem_)));
}

TEST_F(PartitionTest, Q14PartitionedMatchesReference) {
  const TpchQueryResult result = RunForced(TpchQuery::kQ14, 4);
  EXPECT_TRUE(Near(result.scalar, tpch::ReferenceQ14(*part_, *lineitem_)));
}

TEST_F(PartitionTest, DeepPartitioningStaysCorrect) {
  // 16 slices of a 60K-row lineitem: boundary handling (orderkey-aligned
  // snapping for Q3, empty-range skipping) gets real exercise.
  const TpchQueryResult result = RunForced(TpchQuery::kQ3, 16);
  const std::vector<tpch::Q3Row> want =
      tpch::ReferenceQ3(*customer_, *orders_, *lineitem_);
  ASSERT_EQ(result.q3.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(result.q3[i].orderkey, want[i].orderkey) << "row " << i;
    EXPECT_TRUE(Near(result.q3[i].revenue, want[i].revenue)) << "row " << i;
  }
}

TEST_F(PartitionTest, UnconstrainedRunUsesOnePartition) {
  GovernedRunStats stats;
  const TpchQueryResult result = RunForced(TpchQuery::kQ6, 0, &stats);
  EXPECT_EQ(stats.partitions, 1u);
  EXPECT_EQ(stats.oom_fallbacks, 0u);
  // The unpartitioned path spills nothing: no extra transfers to account.
  EXPECT_EQ(stats.spill_h2d_bytes, 0u);
  EXPECT_EQ(stats.spill_d2h_bytes, 0u);
  EXPECT_TRUE(Near(result.scalar, tpch::ReferenceQ6(*lineitem_)));
}

TEST_F(PartitionTest, ConstrainedCapacityTriggersAutomaticPartitioning) {
  CapacityGuard guard;
  gpusim::Device& device = gpusim::Device::Default();
  device.TrimPool();
  const uint64_t footprint =
      EstimateQueryFootprint(TpchQuery::kQ6, Tables(), backends::kHandwritten);
  device.set_memory_capacity(footprint / 4);
  GovernedRunStats stats;
  auto backend = MakeBackend();
  std::vector<PressureEvent> events;
  GovernedQueryOptions options;
  options.on_event = [&](const PressureEvent& e) { events.push_back(e); };
  const TpchQueryResult result =
      RunGoverned(TpchQuery::kQ6, Tables(), *backend, options, &stats);
  EXPECT_GT(stats.partitions, 1u);
  EXPECT_GT(stats.spill_h2d_bytes, 0u);
  EXPECT_TRUE(Near(result.scalar, tpch::ReferenceQ6(*lineitem_)));
  // The event stream narrates the degradation: an admission estimate, the
  // partition decision, one spill event per executed slice.
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].kind, PressureEvent::Kind::kAdmission);
  EXPECT_EQ(events[1].kind, PressureEvent::Kind::kPartition);
  EXPECT_EQ(events[1].partitions, stats.partitions);
}

TEST_F(PartitionTest, FootprintEstimateShrinksWithPartitionsAndIsDeterministic) {
  const TpchHostTables tables = Tables();
  for (const TpchQuery q : {TpchQuery::kQ1, TpchQuery::kQ3, TpchQuery::kQ4,
                            TpchQuery::kQ6, TpchQuery::kQ14}) {
    const uint64_t whole =
        EstimateQueryFootprint(q, tables, backends::kHandwritten);
    const uint64_t quartered =
        EstimateQueryFootprint(q, tables, backends::kHandwritten, 4);
    EXPECT_GT(whole, 0u) << TpchQueryName(q);
    EXPECT_LT(quartered, whole) << TpchQueryName(q);
    EXPECT_EQ(whole, EstimateQueryFootprint(q, tables, backends::kHandwritten))
        << TpchQueryName(q);
  }
}

// Timing-invariance golden for the spill path: simulated time is a pure
// function of the commands charged, so the same partitioned plan on a fresh
// stream replays to bit-identical simulated nanoseconds.
TEST_F(PartitionTest, PartitionedRunSimulatedTimeIsBitIdentical) {
  GovernedRunStats first, second;
  const TpchQueryResult r1 = RunForced(TpchQuery::kQ6, 4, &first);
  const TpchQueryResult r2 = RunForced(TpchQuery::kQ6, 4, &second);
  EXPECT_GT(first.simulated_ns, 0u);
  EXPECT_EQ(first.simulated_ns, second.simulated_ns);
  EXPECT_EQ(first.spill_h2d_bytes, second.spill_h2d_bytes);
  EXPECT_EQ(first.spill_d2h_bytes, second.spill_d2h_bytes);
  EXPECT_EQ(r1.scalar, r2.scalar);
}

TEST_F(PartitionTest, ParseTpchQueryRoundTripsAndRejectsUnknown) {
  for (const TpchQuery q : {TpchQuery::kQ1, TpchQuery::kQ3, TpchQuery::kQ4,
                            TpchQuery::kQ6, TpchQuery::kQ14}) {
    EXPECT_EQ(ParseTpchQuery(TpchQueryName(q)), q);
  }
  EXPECT_THROW(ParseTpchQuery("q99"), std::invalid_argument);
}

}  // namespace
}  // namespace plan
