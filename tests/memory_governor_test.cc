// MemoryGovernor tests: immediate/queued/rejected admission, the strict-FIFO
// no-overtake guarantee, partial grants above the single-grant cap, shutdown
// semantics, and the QueryScheduler integration (admission fields on records,
// rejection as a resource failure, and the OOM-reclaim livelock regression).
// Built into the concurrency_tests binary, which CI also runs under
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "backends/backends.h"
#include "core/governor.h"
#include "core/registry.h"
#include "core/resilience.h"
#include "core/scheduler.h"
#include "gpusim/device.h"
#include "gpusim/fault.h"

namespace core {
namespace {

constexpr size_t kMiB = size_t{1} << 20;

class MemoryGovernorTest : public ::testing::Test {
 protected:
  MemoryGovernorTest() : device_(SmallDevice()) {}

  static gpusim::DeviceProperties SmallDevice() {
    gpusim::DeviceProperties props;
    props.global_memory_bytes = kMiB;
    return props;
  }

  GovernorOptions Opts(uint64_t timeout_ms = 30'000,
                       double max_grant_fraction = 1.0) {
    GovernorOptions o;
    o.device = &device_;
    o.queue_timeout_ms = timeout_ms;
    o.max_grant_fraction = max_grant_fraction;
    return o;
  }

  gpusim::Device device_;
};

TEST_F(MemoryGovernorTest, ImmediateGrantReservesAndReleaseReturns) {
  MemoryGovernor governor(Opts());
  const AdmissionTicket t = governor.Admit(/*stream_id=*/1, 512 * 1024);
  EXPECT_EQ(t.decision, AdmissionDecision::kGranted);
  EXPECT_TRUE(t.admitted());
  EXPECT_FALSE(t.partial());
  EXPECT_EQ(t.granted_bytes, 512u * 1024u);
  EXPECT_EQ(device_.reserved_bytes(), 512u * 1024u);
  governor.Release(1);
  EXPECT_EQ(device_.reserved_bytes(), 0u);
  const GovernorStats stats = governor.Stats();
  EXPECT_EQ(stats.granted, 1u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.released, 1u);
}

TEST_F(MemoryGovernorTest, GrantCapForcesPartialGrant) {
  MemoryGovernor governor(Opts(30'000, /*max_grant_fraction=*/0.5));
  const AdmissionTicket t = governor.Admit(1, 800 * 1024);
  EXPECT_TRUE(t.admitted());
  EXPECT_TRUE(t.partial());
  EXPECT_EQ(t.granted_bytes, kMiB / 2);  // capped at 0.5 x capacity
  EXPECT_EQ(governor.Stats().partial_grants, 1u);
  governor.Release(1);
}

TEST_F(MemoryGovernorTest, FootprintAboveCapacityIsPartiallyGrantedNotRejected) {
  MemoryGovernor governor(Opts());
  // Twice the device: instead of refusing outright, the governor grants the
  // cap and the caller degrades to partitioned execution.
  const AdmissionTicket t = governor.Admit(1, 2 * kMiB);
  EXPECT_TRUE(t.admitted());
  EXPECT_TRUE(t.partial());
  EXPECT_EQ(t.granted_bytes, kMiB);
  governor.Release(1);
}

TEST_F(MemoryGovernorTest, QueueIsStrictFifoEvenWhenALaterRequestWouldFit) {
  MemoryGovernor governor(Opts());
  // Holder takes half the device; 512 KiB stays free.
  ASSERT_TRUE(governor.Admit(/*stream_id=*/10, 512 * 1024).admitted());

  AdmissionTicket ticket_a, ticket_b;
  // Waiter A wants 768 KiB: does not fit next to the holder, so it queues.
  std::thread waiter_a(
      [&] { ticket_a = governor.Admit(/*stream_id=*/11, 768 * 1024); });
  // Wait until A is really registered in the FIFO queue (thread start-up can
  // be arbitrarily slow, e.g. under TSan) before letting B arrive.
  while (governor.queue_depth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Waiter B wants 512 KiB: it WOULD fit in the free 512 KiB right now, but
  // strict FIFO forbids overtaking waiter A.
  std::thread waiter_b(
      [&] { ticket_b = governor.Admit(/*stream_id=*/12, 512 * 1024); });
  while (governor.queue_depth() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(governor.Stats().granted, 1u)
      << "a queued request overtook the FIFO head";

  // Frees 512 KiB: A (head) takes 768 KiB, leaving 256 KiB — B's 512 KiB
  // still cannot fit, so the grant order is enforced by memory, not by host
  // scheduling.
  governor.Release(10);
  waiter_a.join();
  EXPECT_EQ(ticket_a.decision, AdmissionDecision::kQueuedThenGranted);
  EXPECT_EQ(ticket_a.granted_bytes, 768u * 1024u);
  EXPECT_EQ(governor.queue_depth(), 1u);  // B still waiting behind A's grant
  governor.Release(11);
  waiter_b.join();
  EXPECT_EQ(ticket_b.decision, AdmissionDecision::kQueuedThenGranted);
  governor.Release(12);
  const GovernorStats stats = governor.Stats();
  EXPECT_EQ(stats.queued, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.wait_max_ms, 0.0);
}

TEST_F(MemoryGovernorTest, QueueTimeoutRejectsAndQueueRecovers) {
  MemoryGovernor governor(Opts());
  ASSERT_TRUE(governor.Admit(1, kMiB).admitted());  // device full
  const AdmissionTicket t = governor.Admit(2, 512 * 1024, /*timeout_ms=*/50);
  EXPECT_EQ(t.decision, AdmissionDecision::kRejected);
  EXPECT_FALSE(t.admitted());
  EXPECT_EQ(t.granted_bytes, 0u);
  EXPECT_EQ(governor.Stats().rejected, 1u);
  // The abandoned queue slot must not wedge later admissions.
  governor.Release(1);
  const AdmissionTicket t2 = governor.Admit(3, 512 * 1024);
  EXPECT_TRUE(t2.admitted());
  governor.Release(3);
}

TEST_F(MemoryGovernorTest, ShutdownRejectsWaitersAndLaterAdmits) {
  MemoryGovernor governor(Opts());
  ASSERT_TRUE(governor.Admit(1, kMiB).admitted());
  AdmissionTicket waiter_ticket;
  std::thread waiter(
      [&] { waiter_ticket = governor.Admit(2, 512 * 1024); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  governor.Shutdown();
  waiter.join();
  EXPECT_EQ(waiter_ticket.decision, AdmissionDecision::kRejected);
  EXPECT_EQ(governor.Admit(3, 1024).decision, AdmissionDecision::kRejected);
  governor.Release(1);
}

TEST_F(MemoryGovernorTest, DecisionSequenceIsDeterministic) {
  // The same submission script replays to the same decisions and grants —
  // admission is a pure function of arrival order and byte amounts.
  const auto run_script = [this] {
    MemoryGovernor governor(Opts(/*timeout_ms=*/20, 0.75));
    std::vector<AdmissionTicket> tickets;
    tickets.push_back(governor.Admit(1, 600 * 1024));
    tickets.push_back(governor.Admit(2, 900 * 1024));  // partial (cap 768K)
    tickets.push_back(governor.Admit(3, 512 * 1024));  // full -> times out
    governor.Release(1);
    tickets.push_back(governor.Admit(4, 256 * 1024));
    governor.Release(2);
    governor.Release(4);
    return tickets;
  };
  const std::vector<AdmissionTicket> a = run_script();
  const std::vector<AdmissionTicket> b = run_script();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].decision, b[i].decision) << "ticket " << i;
    EXPECT_EQ(a[i].granted_bytes, b[i].granted_bytes) << "ticket " << i;
  }
}

// ---------------------------------------------------------------------------
// Scheduler integration
// ---------------------------------------------------------------------------

class GovernedSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterBuiltinBackends();
    saved_capacity_ = gpusim::Device::Default().memory_capacity();
  }
  void TearDown() override {
    gpusim::Device::Default().set_fault_injector(nullptr);
    gpusim::Device::Default().set_memory_capacity(saved_capacity_);
    gpusim::Device::Default().TrimPool();
  }

  size_t saved_capacity_ = 0;
};

TEST_F(GovernedSchedulerTest, GovernedSubmitRecordsAdmissionAndReleases) {
  GovernorOptions gopts;
  MemoryGovernor governor(gopts);  // Device::Default()
  ResilienceManager resilience;
  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 2;
  opts.governor = &governor;
  opts.resilience = &resilience;
  QueryScheduler scheduler(opts);
  for (int i = 0; i < 4; ++i) {
    uint64_t id = 0;
    scheduler.Submit(
        "alloc",
        [](Backend& b) {
          gpusim::Device& d = b.stream().device();
          void* p = d.Allocate(64 * 1024);
          d.Free(p);
        },
        /*footprint_bytes=*/128 * 1024, &id);
  }
  scheduler.Drain();
  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), 4u);
  for (const QueryRecord& r : records) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.footprint_bytes, 128u * 1024u);
    EXPECT_EQ(r.granted_bytes, 128u * 1024u);
    EXPECT_FALSE(r.admission_rejected);
  }
  const SchedulerReport report = scheduler.Report();
  EXPECT_EQ(report.governor.granted + report.governor.queued, 4u);
  EXPECT_EQ(report.governor.released, 4u);
  EXPECT_GT(report.device_peak_bytes, 0u);
  // Every grant was released: no reservation bytes leak past the report.
  EXPECT_EQ(report.device_reserved_bytes, 0u);
  EXPECT_EQ(gpusim::Device::Default().reserved_bytes(), 0u);
}

TEST_F(GovernedSchedulerTest, AdmissionRejectionFailsQueryWithoutRunningIt) {
  gpusim::Device& device = gpusim::Device::Default();
  device.set_memory_capacity(1 * kMiB);
  GovernorOptions gopts;
  gopts.queue_timeout_ms = 50;
  MemoryGovernor governor(gopts);
  ResilienceManager resilience;
  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 2;
  opts.governor = &governor;
  opts.resilience = &resilience;
  QueryScheduler scheduler(opts);

  std::atomic<bool> hog_running{false};
  std::atomic<bool> victim_ran{false};
  // The hog is granted the whole device and sits on it past the victim's
  // admission timeout.
  scheduler.Submit(
      "hog",
      [&](Backend&) {
        hog_running.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
      },
      /*footprint_bytes=*/kMiB, nullptr);
  while (!hog_running.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  scheduler.Submit(
      "victim", [&](Backend&) { victim_ran.store(true); },
      /*footprint_bytes=*/kMiB, nullptr);
  scheduler.Drain();

  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), 2u);
  const QueryRecord& victim = records[1];
  EXPECT_FALSE(victim.ok);
  EXPECT_TRUE(victim.admission_rejected);
  EXPECT_EQ(victim.error_class, ErrorClass::kResource);
  EXPECT_FALSE(victim_ran.load()) << "rejected query must never execute";
  EXPECT_TRUE(records[0].ok);
  EXPECT_EQ(governor.Stats().rejected, 1u);
}

// Regression for the OOM-reclaim livelock: under *persistent* OOM (every
// allocation fails), TrimPool frees nothing, so repeating the
// reclaim-then-retry cycle can never help. The scheduler must stop after the
// first reclaim instead of burning the whole budget re-running the query.
TEST_F(GovernedSchedulerTest, PersistentOomStopsAfterOneReclaimNotLivelock) {
  gpusim::FaultInjector injector(42);
  gpusim::FaultRule rule;
  rule.site = gpusim::FaultSite::kMalloc;
  rule.kind = gpusim::FaultKind::kOutOfMemory;
  rule.probability = 1.0;  // every allocation OOMs, forever
  injector.AddRule(rule);
  gpusim::Device::Default().set_fault_injector(&injector);

  ResilienceManager resilience;
  SchedulerOptions opts;
  opts.backend_name = backends::kHandwritten;
  opts.num_clients = 1;
  opts.resilience = &resilience;
  // A huge reclaim budget: the old unconditional gate would spin through all
  // of it; the fixed gate stops once reclaiming cannot change anything.
  opts.retry.max_reclaims = 50;
  QueryScheduler scheduler(opts);
  std::atomic<int> executions{0};
  scheduler.Submit("oom", [&](Backend& b) {
    executions.fetch_add(1);
    void* p = b.stream().device().Allocate(4096);
    b.stream().device().Free(p);
  });
  scheduler.Drain();
  const auto records = scheduler.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_EQ(records[0].error_class, ErrorClass::kResource);
  // First OOM earns exactly one reclaim (the pool might have hidden the
  // bytes); the second OOM sees an empty pool and fails the query.
  EXPECT_EQ(records[0].oom_reclaims, 1);
  EXPECT_EQ(executions.load(), 2);
}

}  // namespace
}  // namespace core
