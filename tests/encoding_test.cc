// Tests of the lightweight column encodings (storage/encoding.h): randomized
// round-trip properties per scheme, encoded-domain predicate rewriting, the
// encoded-vs-raw differential over the TPC-H queries on every backend, and
// the footprint regression pinning encoded base-table sizing.
#include "storage/encoding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/backend.h"
#include "core/registry.h"
#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/partition.h"
#include "plan/tpch_plans.h"
#include "storage/encoded_column.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

using core::CompareOp;
using core::Predicate;
using storage::ChooseEncoding;
using storage::Column;
using storage::DataType;
using storage::DecodeColumnHost;
using storage::EncodeColumn;
using storage::EncodedColumn;
using storage::Encoding;
using storage::EncodingChoice;

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

template <typename T>
void ExpectRoundTrip(const std::vector<T>& values,
                     const EncodingChoice& choice) {
  const Column original((std::vector<T>(values)));
  const EncodedColumn encoded = EncodeColumn(original, choice);
  const Column decoded = DecodeColumnHost(encoded);
  ASSERT_EQ(decoded.type(), original.type());
  ASSERT_EQ(decoded.size(), values.size());
  EXPECT_EQ(decoded.values<T>(), values);
}

EncodingChoice Force(Encoding e, unsigned bits = 0, int64_t reference = 0) {
  EncodingChoice c;
  c.encoding = e;
  c.bit_width = bits;
  c.reference = reference;
  return c;
}

TEST(EncodingRoundTripTest, BitPackRandomizedWidths) {
  std::mt19937 rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    const unsigned bits = 1 + rng() % 31;
    const size_t n = 1 + rng() % 500;
    std::vector<int32_t> v(n);
    const uint64_t mask = (uint64_t{1} << bits) - 1;
    for (auto& x : v) x = static_cast<int32_t>(rng() & mask);
    ExpectRoundTrip(v, Force(Encoding::kBitPack, bits));
  }
}

TEST(EncodingRoundTripTest, BitPackMaxWidthInt64) {
  // 63-bit codes force every pack/unpack to straddle word boundaries.
  std::mt19937_64 rng(11);
  std::vector<int64_t> v(257);
  for (auto& x : v) {
    x = static_cast<int64_t>(rng() & ((uint64_t{1} << 63) - 1));
  }
  v[0] = (int64_t{1} << 62) + ((int64_t{1} << 62) - 1);  // max 63-bit value
  v[1] = 0;
  ExpectRoundTrip(v, Force(Encoding::kBitPack, 63));
}

TEST(EncodingRoundTripTest, FrameOfReferenceRandomized) {
  std::mt19937 rng(13);
  for (int iter = 0; iter < 20; ++iter) {
    const unsigned bits = 1 + rng() % 20;
    const int64_t reference =
        static_cast<int64_t>(rng()) - 2000000000;  // negative frames too
    const size_t n = 1 + rng() % 500;
    std::vector<int64_t> v(n);
    const uint64_t mask = (uint64_t{1} << bits) - 1;
    for (auto& x : v) x = reference + static_cast<int64_t>(rng() & mask);
    ExpectRoundTrip(v, Force(Encoding::kFor, bits, reference));
  }
}

TEST(EncodingRoundTripTest, DictionarySingleDistinctValue) {
  const std::vector<double> v(100, 0.0625);
  ExpectRoundTrip(v, Force(Encoding::kDictionary));
}

TEST(EncodingRoundTripTest, DictionaryAtMaxDistinctCap) {
  // Exactly kMaxDictSize distinct values, shuffled: 16-bit codes.
  std::vector<int32_t> v(storage::kMaxDictSize);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int32_t>(i) - 777;
  std::mt19937 rng(17);
  std::shuffle(v.begin(), v.end(), rng);
  const Column original((std::vector<int32_t>(v)));
  const EncodedColumn encoded =
      EncodeColumn(original, Force(Encoding::kDictionary));
  EXPECT_EQ(encoded.bit_width, 16u);
  EXPECT_EQ(encoded.dict_i64.size(), storage::kMaxDictSize);
  const Column decoded = DecodeColumnHost(encoded);
  EXPECT_EQ(decoded.values<int32_t>(), v);
}

TEST(EncodingRoundTripTest, DictionaryRandomFloatPool) {
  std::mt19937 rng(19);
  for (int iter = 0; iter < 20; ++iter) {
    const size_t pool = 1 + rng() % 50;
    std::vector<double> values(1 + rng() % 400);
    for (auto& x : values) {
      x = (static_cast<double>(rng() % pool) - pool / 2.0) / 16.0;
    }
    ExpectRoundTrip(values, Force(Encoding::kDictionary));
  }
}

TEST(EncodingRoundTripTest, RleSingleRun) {
  const std::vector<int32_t> v(1000, 42);
  const Column original((std::vector<int32_t>(v)));
  const EncodedColumn encoded = EncodeColumn(original, Force(Encoding::kRle));
  EXPECT_EQ(encoded.rle_values.size(), 1u);
  EXPECT_EQ(encoded.rle_ends.back(), 1000u);
  EXPECT_EQ(DecodeColumnHost(encoded).values<int32_t>(), v);
}

TEST(EncodingRoundTripTest, RleRandomRuns) {
  std::mt19937 rng(23);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<int32_t> v;
    int32_t value = static_cast<int32_t>(rng() % 100);
    while (v.size() < 300) {
      const size_t run = 1 + rng() % 17;
      for (size_t i = 0; i < run && v.size() < 300; ++i) v.push_back(value);
      value += 1 + static_cast<int32_t>(rng() % 3);
    }
    ExpectRoundTrip(v, Force(Encoding::kRle));
  }
}

TEST(EncodingRoundTripTest, EmptyColumnsEveryScheme) {
  ExpectRoundTrip(std::vector<int32_t>{}, Force(Encoding::kBitPack, 1));
  ExpectRoundTrip(std::vector<int64_t>{}, Force(Encoding::kFor, 1, 5));
  ExpectRoundTrip(std::vector<double>{}, Force(Encoding::kDictionary));
  ExpectRoundTrip(std::vector<int32_t>{}, Force(Encoding::kRle));
}

TEST(EncodingRoundTripTest, AutoChoiceRoundTripsDatagenColumns) {
  tpch::Config config;
  config.scale_factor = 0.002;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  for (const std::string& name : lineitem.column_names()) {
    const Column& c = lineitem.column(name);
    const EncodingChoice choice =
        ChooseEncoding(storage::AnalyzeColumn(c), c.size(), c.type());
    if (choice.encoding == Encoding::kNone) continue;
    const EncodedColumn encoded = EncodeColumn(c, choice);
    EXPECT_LE(encoded.encoded_byte_size(), c.byte_size()) << name;
    const Column decoded = DecodeColumnHost(encoded);
    ASSERT_EQ(decoded.size(), c.size()) << name;
    if (c.type() == DataType::kFloat64) {
      EXPECT_EQ(decoded.values<double>(), c.values<double>()) << name;
    } else if (c.type() == DataType::kInt32) {
      EXPECT_EQ(decoded.values<int32_t>(), c.values<int32_t>()) << name;
    } else if (c.type() == DataType::kInt64) {
      EXPECT_EQ(decoded.values<int64_t>(), c.values<int64_t>()) << name;
    }
  }
}

TEST(EncodingChoiceTest, PicksExpectedSchemesForTpchShapes) {
  tpch::Config config;
  config.scale_factor = 0.002;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const auto choose = [&](const char* name) {
    const Column& c = lineitem.column(name);
    return ChooseEncoding(storage::AnalyzeColumn(c), c.size(), c.type())
        .encoding;
  };
  EXPECT_EQ(choose("l_orderkey"), Encoding::kRle);      // sorted, long runs
  EXPECT_EQ(choose("l_shipdate"), Encoding::kFor);      // narrow date range
  EXPECT_EQ(choose("l_returnflag"), Encoding::kBitPack);  // tiny domain
  EXPECT_EQ(choose("l_discount"), Encoding::kDictionary);  // 11 floats
}

// ---------------------------------------------------------------------------
// Encoded-domain predicate rewriting
// ---------------------------------------------------------------------------

class PredicateRewriteTest : public ::testing::Test {
 protected:
  gpusim::Stream stream_{gpusim::Device::Default(),
                         gpusim::ApiProfile::Cuda()};

  /// Uploads `values` under the forced `choice` and checks that the encoded
  /// scan matcher agrees with a plain host evaluation for every row.
  template <typename T>
  void ExpectMatcherAgrees(const std::vector<T>& values,
                           const EncodingChoice& choice,
                           const Predicate& pred) {
    const Column host((std::vector<T>(values)));
    const storage::EncodedDeviceColumn dev =
        storage::UploadColumnEncoded(stream_, EncodeColumn(host, choice));
    const auto matcher =
        core::MakeScanMatcher(core::ScanColumnRef::Encoded(dev), pred);
    for (size_t i = 0; i < values.size(); ++i) {
      const double x = static_cast<double>(values[i]);
      const bool want = core::ApplyCompareOp(pred.op, x, pred.value_f);
      EXPECT_EQ(matcher(i), want)
          << "row " << i << " value " << x << " op "
          << core::CompareOpName(pred.op) << " " << pred.value_f;
    }
  }
};

TEST_F(PredicateRewriteTest, ForColumnAllOpsAllThresholds) {
  std::mt19937 rng(29);
  std::vector<int64_t> v(300);
  for (auto& x : v) x = 1000 + static_cast<int64_t>(rng() % 128);
  const EncodingChoice choice = Force(Encoding::kFor, 7, 1000);
  for (const CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                             CompareOp::kGe, CompareOp::kEq, CompareOp::kNe}) {
    // In-range, below-range, and above-range thresholds: the rewrite must
    // fold out-of-frame literals to kAlwaysTrue/kAlwaysFalse correctly.
    for (const double threshold : {1050.0, 500.0, 5000.0, 1000.0, 1127.0}) {
      ExpectMatcherAgrees(v, choice, Predicate::Make("c", op, threshold));
    }
  }
}

TEST_F(PredicateRewriteTest, DictionaryColumnNonMemberLiterals) {
  // Q6-style discount domain: multiples of 0.01. Literals between dictionary
  // entries must still compare correctly (kEq on a non-member is never true).
  std::vector<double> v;
  std::mt19937 rng(31);
  for (int i = 0; i < 400; ++i) v.push_back((rng() % 11) / 100.0);
  const EncodingChoice choice = Force(Encoding::kDictionary);
  for (const CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                             CompareOp::kGe, CompareOp::kEq, CompareOp::kNe}) {
    for (const double threshold : {0.05, 0.055, -1.0, 1.0, 0.0, 0.10}) {
      ExpectMatcherAgrees(v, choice, Predicate::Make("c", op, threshold));
    }
  }
}

TEST_F(PredicateRewriteTest, RleColumnBinarySearchesRuns) {
  std::vector<int32_t> v;
  for (int32_t run = 0; run < 50; ++run) {
    for (int i = 0; i < 1 + run % 7; ++i) v.push_back(run * 3);
  }
  for (const CompareOp op : {CompareOp::kLt, CompareOp::kGe, CompareOp::kEq,
                             CompareOp::kNe}) {
    ExpectMatcherAgrees(v, Force(Encoding::kRle),
                        Predicate::Make("c", op, 75.0));
  }
}

TEST_F(PredicateRewriteTest, RewriteFoldsOutOfRangeToConstants) {
  std::vector<int64_t> v(64);
  for (size_t i = 0; i < v.size(); ++i) v[i] = 100 + static_cast<int64_t>(i);
  const storage::EncodedDeviceColumn dev = storage::UploadColumnEncoded(
      stream_, EncodeColumn(Column((std::vector<int64_t>(v))),
                            Force(Encoding::kFor, 6, 100)));
  const core::EncodedPredicate below =
      core::RewritePredicate(dev, Predicate::Make("c", CompareOp::kLt, 50.0));
  EXPECT_EQ(below.kind, core::EncodedPredicate::Kind::kAlwaysFalse);
  const core::EncodedPredicate above =
      core::RewritePredicate(dev, Predicate::Make("c", CompareOp::kLt, 500.0));
  EXPECT_EQ(above.kind, core::EncodedPredicate::Kind::kAlwaysTrue);
}

// ---------------------------------------------------------------------------
// Encoded-vs-raw differential over the TPC-H queries, every backend
// ---------------------------------------------------------------------------

bool Near(double got, double want) {
  return std::abs(got - want) <= std::abs(want) * 1e-9 + 1e-6;
}

class EncodedQueryDifferentialTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() { core::RegisterBuiltinBackends(); }

  static tpch::Config SmallConfig() {
    tpch::Config config;
    config.scale_factor = 0.002;
    return config;
  }

  static std::unique_ptr<core::Backend> MakeBackend() {
    return core::BackendRegistry::Instance().Create(GetParam());
  }

  /// Runs a plan query twice on fresh backends — raw uploads vs encoded
  /// uploads — and returns both execution results through `extract`.
  template <typename Build, typename Extract>
  static auto RunBoth(Build build, Extract extract) {
    std::array<decltype(extract(std::declval<const plan::QueryPlanBundle&>(),
                                std::declval<const plan::ExecutionResult&>())),
               2>
        out;
    for (const bool encoded : {false, true}) {
      auto backend = MakeBackend();
      gpusim::Stream& stream = backend->stream();
      const auto upload = [&](const storage::Table& t) {
        return encoded ? storage::UploadTableEncoded(stream, t)
                       : storage::UploadTable(stream, t);
      };
      const plan::QueryPlanBundle bundle = build(upload);
      plan::OptimizerOptions options;
      options.pin_backend = GetParam();
      const plan::PhysicalPlan phys = plan::Optimize(bundle.plan, options);
      const plan::ExecutionResult result = plan::RunPinned(phys, *backend);
      out[encoded ? 1 : 0] = extract(bundle, result);
    }
    return out;
  }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, EncodedQueryDifferentialTest,
                         ::testing::Values(backends::kThrust,
                                           backends::kBoostCompute,
                                           backends::kArrayFire,
                                           backends::kHandwritten));

TEST_P(EncodedQueryDifferentialTest, Q1EncodedMatchesRaw) {
  const storage::Table host = tpch::GenerateLineitem(SmallConfig());
  std::array<std::vector<tpch::Q1Row>, 2> out;
  for (const bool encoded : {false, true}) {
    auto backend = MakeBackend();
    gpusim::Stream& stream = backend->stream();
    const storage::DeviceTable lineitem =
        encoded ? storage::UploadTableEncoded(stream, host)
                : storage::UploadTable(stream, host);
    out[encoded ? 1 : 0] = tpch::RunQ1(*backend, lineitem);
  }
  const auto& raw = out[0];
  const auto& enc = out[1];
  ASSERT_EQ(raw.size(), enc.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(raw[i].returnflag, enc[i].returnflag);
    EXPECT_EQ(raw[i].linestatus, enc[i].linestatus);
    EXPECT_EQ(raw[i].count_order, enc[i].count_order);
    // Float sums may re-associate (the handwritten backend's atomic-ticket
    // row order is run-dependent): tolerance, not bit equality.
    EXPECT_TRUE(Near(enc[i].sum_qty, raw[i].sum_qty));
    EXPECT_TRUE(Near(enc[i].sum_base_price, raw[i].sum_base_price));
    EXPECT_TRUE(Near(enc[i].sum_disc_price, raw[i].sum_disc_price));
    EXPECT_TRUE(Near(enc[i].sum_charge, raw[i].sum_charge));
  }
}

TEST_P(EncodedQueryDifferentialTest, Q6EncodedMatchesRaw) {
  const storage::Table host = tpch::GenerateLineitem(SmallConfig());
  double results[2];
  for (const bool encoded : {false, true}) {
    auto backend = MakeBackend();
    gpusim::Stream& stream = backend->stream();
    const storage::DeviceTable lineitem =
        encoded ? storage::UploadTableEncoded(stream, host)
                : storage::UploadTable(stream, host);
    results[encoded ? 1 : 0] = tpch::RunQ6(*backend, lineitem);
  }
  EXPECT_TRUE(Near(results[1], results[0]))
      << results[0] << " vs " << results[1];
  EXPECT_TRUE(Near(results[0], tpch::ReferenceQ6(host)));
}

TEST_P(EncodedQueryDifferentialTest, Q3EncodedMatchesRaw) {
  const tpch::Config config = SmallConfig();
  const storage::Table customer = tpch::GenerateCustomer(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  storage::DeviceTable dc, dord, dli;
  const auto out = RunBoth(
      [&](const auto& upload) {
        dc = upload(customer);
        dord = upload(orders);
        dli = upload(lineitem);
        return plan::BuildQ3Plan(dc, dord, dli);
      },
      [](const plan::QueryPlanBundle& bundle,
         const plan::ExecutionResult& result) {
        return plan::ExtractQ3(bundle, result, tpch::Q3Params());
      });
  ASSERT_EQ(out[0].size(), out[1].size());
  for (size_t i = 0; i < out[0].size(); ++i) {
    EXPECT_EQ(out[0][i].orderkey, out[1][i].orderkey);
    EXPECT_TRUE(Near(out[1][i].revenue, out[0][i].revenue));
  }
}

TEST_P(EncodedQueryDifferentialTest, Q4EncodedMatchesRaw) {
  const tpch::Config config = SmallConfig();
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  storage::DeviceTable dord, dli;
  const auto out = RunBoth(
      [&](const auto& upload) {
        dord = upload(orders);
        dli = upload(lineitem);
        return plan::BuildQ4Plan(dord, dli);
      },
      [](const plan::QueryPlanBundle& bundle,
         const plan::ExecutionResult& result) {
        return plan::ExtractQ4(bundle, result);
      });
  ASSERT_EQ(out[0].size(), out[1].size());
  for (size_t i = 0; i < out[0].size(); ++i) {
    EXPECT_EQ(out[0][i].orderpriority, out[1][i].orderpriority);
    EXPECT_EQ(out[0][i].order_count, out[1][i].order_count);
  }
}

TEST_P(EncodedQueryDifferentialTest, Q14EncodedMatchesRaw) {
  const tpch::Config config = SmallConfig();
  const storage::Table part = tpch::GeneratePart(config);
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  storage::DeviceTable dp, dli;
  const auto out = RunBoth(
      [&](const auto& upload) {
        dp = upload(part);
        dli = upload(lineitem);
        return plan::BuildQ14Plan(dp, dli);
      },
      [](const plan::QueryPlanBundle& bundle,
         const plan::ExecutionResult& result) {
        return plan::ExtractQ14(bundle, result);
      });
  EXPECT_TRUE(Near(out[1], out[0])) << out[0] << " vs " << out[1];
}

// ---------------------------------------------------------------------------
// Footprint regression: encoded base tables, raw intermediates
// ---------------------------------------------------------------------------

TEST(EncodedFootprintTest, Q6EncodedFootprintBeatsRaw) {
  core::RegisterBuiltinBackends();
  tpch::Config config;
  config.scale_factor = 0.01;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table customer = tpch::GenerateCustomer(config);
  const storage::Table part = tpch::GeneratePart(config);
  plan::TpchHostTables tables;
  tables.lineitem = &lineitem;
  tables.orders = &orders;
  tables.customer = &customer;
  tables.part = &part;

  const uint64_t raw = plan::EstimateQueryFootprint(
      plan::TpchQuery::kQ6, tables, backends::kHandwritten);
  const uint64_t enc = plan::EstimateQueryFootprint(
      plan::TpchQuery::kQ6, tables, backends::kHandwritten,
      /*partitions=*/1, /*use_encoding=*/true);
  EXPECT_GT(enc, 0u);
  // The regression this pins: encoded sizing applies to the base-table scan
  // terms (Q6 reads l_shipdate/l_discount/l_quantity encoded and never
  // decodes them), so the encoded estimate must be strictly below raw — the
  // old uniform 2x-headroom sizing priced both identically.
  EXPECT_LT(enc, raw);
  // The saving is bounded by the scan share of the footprint (selection and
  // gather outputs stay raw-priced), but the three packed predicate columns
  // must still show up: require at least a 10% reduction.
  EXPECT_LT(enc, raw - raw / 10);
}

TEST(EncodedFootprintTest, EncodedEstimateAdmitsWhereRawPartitions) {
  core::RegisterBuiltinBackends();
  tpch::Config config;
  config.scale_factor = 0.01;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table customer = tpch::GenerateCustomer(config);
  const storage::Table part = tpch::GeneratePart(config);
  plan::TpchHostTables tables;
  tables.lineitem = &lineitem;
  tables.orders = &orders;
  tables.customer = &customer;
  tables.part = &part;

  for (const plan::TpchQuery q :
       {plan::TpchQuery::kQ1, plan::TpchQuery::kQ6, plan::TpchQuery::kQ14}) {
    const uint64_t raw = plan::EstimateQueryFootprint(
        q, tables, backends::kHandwritten, 1, false);
    const uint64_t enc = plan::EstimateQueryFootprint(
        q, tables, backends::kHandwritten, 1, true);
    EXPECT_LT(enc, raw) << plan::TpchQueryName(q);
  }
}

}  // namespace
