// Quickstart: upload a column-store table to the (simulated) GPU and run
// database operators through a library backend.
//
//   build/examples/quickstart [backend]
//
// backend is one of: Thrust (default), Boost.Compute, ArrayFire, Handwritten.
#include <iostream>
#include <vector>

#include "core/metrics.h"
#include "core/registry.h"
#include "storage/device_column.h"
#include "storage/table.h"

int main(int argc, char** argv) {
  core::RegisterBuiltinBackends();
  const std::string backend_name = argc > 1 ? argv[1] : "Thrust";
  if (!core::BackendRegistry::Instance().Contains(backend_name)) {
    std::cerr << "unknown backend '" << backend_name << "'; available:";
    for (const auto& n : core::BackendRegistry::Instance().Names()) {
      std::cerr << " " << n;
    }
    std::cerr << "\n";
    return 1;
  }
  auto backend = core::BackendRegistry::Instance().Create(backend_name);
  std::cout << "Using backend: " << backend->name() << "\n\n";

  // A small orders table: (customer, amount).
  storage::Table orders("orders");
  orders.AddColumn("customer", storage::Column(std::vector<int32_t>{
                                   1, 2, 1, 3, 2, 2, 3, 1, 2, 3}));
  orders.AddColumn("amount",
                   storage::Column(std::vector<double>{
                       10.0, 250.0, 40.0, 30.0, 125.0, 80.0, 5.0, 60.0, 44.0,
                       90.0}));

  // Explicit upload: device memory is distinct from host memory, and every
  // transfer is priced by the cost model.
  core::ScopedMeasurement upload_scope(backend->stream(), "upload");
  const storage::DeviceTable dev =
      storage::UploadTable(backend->stream(), orders);
  core::PrintMeasurement(std::cout, upload_scope.Stop());

  // SELECT customer, SUM(amount) WHERE amount >= 40 GROUP BY customer.
  core::ScopedMeasurement query_scope(backend->stream(), "query");
  const auto sel = backend->Select(
      dev.column("amount"),
      core::Predicate::Make("amount", core::CompareOp::kGe, 40.0));
  const auto customers = backend->Gather(dev.column("customer"), sel.row_ids);
  const auto amounts = backend->Gather(dev.column("amount"), sel.row_ids);
  const auto grouped =
      backend->GroupByAggregate(customers, amounts, core::AggOp::kSum);
  core::PrintMeasurement(std::cout, query_scope.Stop());

  // Download and print the result.
  const auto keys =
      grouped.keys.ToHost(backend->stream()).values<int32_t>();
  const auto sums =
      grouped.aggregate.ToHost(backend->stream()).values<double>();
  std::cout << "\ncustomer | sum(amount >= 40)\n";
  for (size_t i = 0; i < grouped.num_groups; ++i) {
    std::cout << "  " << keys[i] << "      | " << sums[i] << "\n";
  }
  std::cout << "\nSelected " << sel.count << " of " << orders.num_rows()
            << " rows; " << grouped.num_groups << " groups.\n";
  return 0;
}
