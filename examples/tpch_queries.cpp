// Runs TPC-H Q1 and Q6 through every registered library backend and prints
// per-backend results and simulated device timings — the paper's query
// experiment as a runnable demo.
//
//   build/examples/tpch_queries [scale_factor]    (default 0.01)
#include <iomanip>
#include <iostream>

#include "core/metrics.h"
#include "core/registry.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  core::RegisterBuiltinBackends();
  tpch::Config config;
  config.scale_factor = argc > 1 ? std::stod(argv[1]) : 0.01;

  std::cout << "Generating TPC-H lineitem at SF " << config.scale_factor
            << "...\n";
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  std::cout << lineitem.num_rows() << " rows\n\n";

  const double q6_ref = tpch::ReferenceQ6(lineitem);
  const auto q1_ref = tpch::ReferenceQ1(lineitem);

  std::cout << std::left << std::setw(16) << "backend" << std::right
            << std::setw(14) << "Q6 [ms]" << std::setw(14) << "Q1 [ms]"
            << std::setw(16) << "Q6 revenue" << "   (simulated device time; "
            << "first call, incl. any JIT compile)\n";
  std::cout << std::string(90, '-') << "\n";

  for (const auto& name : core::BackendRegistry::Instance().Names()) {
    auto backend = core::BackendRegistry::Instance().Create(name);
    const storage::DeviceTable dev =
        storage::UploadTable(backend->stream(), lineitem);

    core::ScopedMeasurement q6_scope(backend->stream(), "q6");
    const double revenue = tpch::RunQ6(*backend, dev);
    const auto q6 = q6_scope.Stop();

    core::ScopedMeasurement q1_scope(backend->stream(), "q1");
    const auto q1_rows = tpch::RunQ1(*backend, dev);
    const auto q1 = q1_scope.Stop();

    const bool q6_ok = std::abs(revenue - q6_ref) < 1e-6 * std::abs(q6_ref);
    std::cout << std::left << std::setw(16) << name << std::right
              << std::fixed << std::setprecision(3) << std::setw(14)
              << q6.simulated_ms() << std::setw(14) << q1.simulated_ms()
              << std::setw(16) << std::setprecision(2) << revenue
              << (q6_ok ? "   ok" : "   MISMATCH") << "\n";

    if (name == "Handwritten") {
      std::cout << "\nQ1 result (" << q1_rows.size() << " groups):\n";
      std::cout << "  rf ls     sum_qty   sum_base_price      avg_disc  "
                   "count\n";
      for (const auto& row : q1_rows) {
        std::cout << "  " << row.returnflag << "  " << row.linestatus << "  "
                  << std::setw(10) << std::setprecision(0) << row.sum_qty
                  << "  " << std::setw(15) << std::setprecision(2)
                  << row.sum_base_price << "  " << std::setw(12)
                  << std::setprecision(6) << row.avg_disc << "  "
                  << row.count_order << "\n";
      }
    }
  }
  std::cout << "\nReference Q6 revenue: " << std::fixed
            << std::setprecision(2) << q6_ref << "; Q1 groups: "
            << q1_ref.size() << "\n";
  return 0;
}
