// Demonstrates the framework's plug-in point: a user-written library backend
// registered at run time and then used interchangeably with the built-ins —
// the capability the paper's framework exists to provide ("allows a user to
// plug-in new libraries and custom-written code").
//
// The example backend ("TunedThrust") delegates everything to the stock
// Thrust binding but overrides selection with a fused custom kernel — the
// typical hybrid a practitioner builds when one operator of a library is the
// bottleneck.
#include <iostream>
#include <random>
#include <vector>

#include "backends/backends.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "core/support_matrix.h"
#include "gpusim/atomic_ops.h"
#include "gpusim/kernel.h"
#include "gpusim/memory.h"
#include "storage/device_column.h"

namespace {

/// A user backend: Thrust everywhere, except a hand-fused selection kernel.
class TunedThrustBackend : public core::Backend {
 public:
  TunedThrustBackend() : inner_(backends::CreateThrustBackend()) {}

  std::string name() const override { return "TunedThrust"; }
  gpusim::Stream& stream() override { return inner_->stream(); }

  core::OperatorRealization Realization(core::DbOperator op) const override {
    if (op == core::DbOperator::kSelection) {
      return {core::SupportLevel::kFull, "custom fused kernel"};
    }
    return inner_->Realization(op);
  }

  core::SelectionResult Select(const storage::DeviceColumn& column,
                               const core::Predicate& pred) override {
    // One fused kernel instead of Thrust's transform+scan+scatter pipeline.
    const size_t n = column.size();
    core::SelectionResult out;
    out.row_ids =
        storage::DeviceColumn(storage::DataType::kInt32, n, stream().device());
    gpusim::DeviceArray<uint32_t> counter(1, stream().device());
    gpusim::MemsetDevice(stream(), counter.data(), 0, sizeof(uint32_t));
    gpusim::KernelStats stats;
    stats.name = "tuned::select";
    stats.bytes_read = column.byte_size();
    stats.bytes_written = n * sizeof(uint32_t);
    const int32_t* data = column.data<int32_t>();
    const int32_t lit = static_cast<int32_t>(pred.value_i);
    const core::CompareOp op = pred.op;
    uint32_t* c = counter.data();
    int32_t* rows = out.row_ids.data<int32_t>();
    gpusim::ParallelFor(stream(), n, stats, [=](size_t i) {
      const int32_t v = data[i];
      bool hit = false;
      switch (op) {
        case core::CompareOp::kLt: hit = v < lit; break;
        case core::CompareOp::kLe: hit = v <= lit; break;
        case core::CompareOp::kGt: hit = v > lit; break;
        case core::CompareOp::kGe: hit = v >= lit; break;
        case core::CompareOp::kEq: hit = v == lit; break;
        case core::CompareOp::kNe: hit = v != lit; break;
      }
      if (hit) rows[gpusim::AtomicAdd(c, uint32_t{1})] = static_cast<int32_t>(i);
    });
    uint32_t count = 0;
    gpusim::CopyDeviceToHost(stream(), &count, counter.data(),
                             sizeof(uint32_t));
    out.count = count;
    return out;
  }

  // Everything else: delegate to the library binding.
  core::SelectionResult SelectConjunctive(
      const std::vector<const storage::DeviceColumn*>& cols,
      const std::vector<core::Predicate>& preds) override {
    return inner_->SelectConjunctive(cols, preds);
  }
  core::SelectionResult SelectDisjunctive(
      const std::vector<const storage::DeviceColumn*>& cols,
      const std::vector<core::Predicate>& preds) override {
    return inner_->SelectDisjunctive(cols, preds);
  }
  core::SelectionResult SelectCompareColumns(
      const storage::DeviceColumn& a, core::CompareOp op,
      const storage::DeviceColumn& b) override {
    return inner_->SelectCompareColumns(a, op, b);
  }
  storage::DeviceColumn Unique(const storage::DeviceColumn& c) override {
    return inner_->Unique(c);
  }
  core::JoinResult NestedLoopsJoin(const storage::DeviceColumn& l,
                                   const storage::DeviceColumn& r) override {
    return inner_->NestedLoopsJoin(l, r);
  }
  core::GroupByResult GroupByAggregate(const storage::DeviceColumn& k,
                                       const storage::DeviceColumn& v,
                                       core::AggOp op) override {
    return inner_->GroupByAggregate(k, v, op);
  }
  double ReduceColumn(const storage::DeviceColumn& v,
                      core::AggOp op) override {
    return inner_->ReduceColumn(v, op);
  }
  storage::DeviceColumn Sort(const storage::DeviceColumn& c) override {
    return inner_->Sort(c);
  }
  std::pair<storage::DeviceColumn, storage::DeviceColumn> SortByKey(
      const storage::DeviceColumn& k, const storage::DeviceColumn& v) override {
    return inner_->SortByKey(k, v);
  }
  storage::DeviceColumn PrefixSum(const storage::DeviceColumn& c) override {
    return inner_->PrefixSum(c);
  }
  storage::DeviceColumn Gather(const storage::DeviceColumn& s,
                               const storage::DeviceColumn& i) override {
    return inner_->Gather(s, i);
  }
  storage::DeviceColumn Scatter(const storage::DeviceColumn& s,
                                const storage::DeviceColumn& i,
                                size_t n) override {
    return inner_->Scatter(s, i, n);
  }
  storage::DeviceColumn Product(const storage::DeviceColumn& a,
                                const storage::DeviceColumn& b) override {
    return inner_->Product(a, b);
  }
  storage::DeviceColumn AddScalar(const storage::DeviceColumn& a,
                                  double alpha) override {
    return inner_->AddScalar(a, alpha);
  }
  storage::DeviceColumn SubtractFromScalar(
      double alpha, const storage::DeviceColumn& a) override {
    return inner_->SubtractFromScalar(alpha, a);
  }

 private:
  std::unique_ptr<core::Backend> inner_;
};

}  // namespace

int main() {
  core::RegisterBuiltinBackends();
  core::BackendRegistry::Instance().Register(
      "TunedThrust", [] { return std::make_unique<TunedThrustBackend>(); });

  // The custom backend appears in the support matrix like any library.
  core::PrintSupportMatrix(std::cout, {"Thrust", "TunedThrust"});

  // Head-to-head on a 4M-row selection.
  std::vector<int32_t> data(1 << 22);
  std::mt19937_64 rng(9);
  for (auto& v : data) v = static_cast<int32_t>(rng() % 1000);
  const auto pred = core::Predicate::Make("x", core::CompareOp::kLt, 100.0);

  std::cout << "\nSelection, 4M rows, 10% selectivity:\n";
  for (const std::string name : {"Thrust", "TunedThrust"}) {
    auto backend = core::BackendRegistry::Instance().Create(name);
    const auto col = storage::UploadColumn(backend->stream(),
                                           storage::Column(data));
    core::ScopedMeasurement scope(backend->stream(), name);
    const auto sel = backend->Select(col, pred);
    core::PrintMeasurement(std::cout, scope.Stop());
    std::cout << "    -> " << sel.count << " rows selected\n";
  }
  return 0;
}
