// Compares one database operator across all library backends and prints a
// side-by-side table of simulated device time, kernel launches, and memory
// traffic — a miniature, human-readable version of the benchmark harness.
//
//   build/examples/operator_comparison [rows]     (default 1<<20)
#include <iomanip>
#include <iostream>
#include <random>
#include <vector>

#include "core/metrics.h"
#include "core/registry.h"
#include "storage/device_column.h"

namespace {

std::vector<int32_t> RandomInts(size_t n, int32_t domain) {
  std::mt19937 rng(21);
  std::vector<int32_t> out(n);
  for (auto& v : out) v = static_cast<int32_t>(rng() % domain);
  return out;
}

void PrintHeader(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
  std::cout << std::left << std::setw(16) << "backend" << std::right
            << std::setw(12) << "time [ms]" << std::setw(10) << "kernels"
            << std::setw(12) << "MiB moved" << std::setw(10) << "compiles"
            << "\n";
}

void PrintRow(const std::string& name, const core::Measurement& m) {
  std::cout << std::left << std::setw(16) << name << std::right << std::fixed
            << std::setprecision(3) << std::setw(12) << m.simulated_ms()
            << std::setw(10) << m.kernels << std::setw(12)
            << std::setprecision(1)
            << (m.bytes_read + m.bytes_written) / (1024.0 * 1024.0)
            << std::setw(10) << m.programs_compiled << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  core::RegisterBuiltinBackends();
  const size_t n = argc > 1 ? std::stoull(argv[1]) : (1 << 20);
  const auto data = RandomInts(n, 1000);
  const auto keys = RandomInts(n, 64);

  PrintHeader("Selection (10% selectivity), " + std::to_string(n) + " rows");
  for (const auto& name : core::BackendRegistry::Instance().Names()) {
    auto backend = core::BackendRegistry::Instance().Create(name);
    const auto col =
        storage::UploadColumn(backend->stream(), storage::Column(data));
    backend->Select(col, core::Predicate::Make("x", core::CompareOp::kLt,
                                               100.0));  // warm
    core::ScopedMeasurement scope(backend->stream(), name);
    backend->Select(col,
                    core::Predicate::Make("x", core::CompareOp::kLt, 100.0));
    PrintRow(name, scope.Stop());
  }

  PrintHeader("Grouped sum (64 groups), " + std::to_string(n) + " rows");
  for (const auto& name : core::BackendRegistry::Instance().Names()) {
    auto backend = core::BackendRegistry::Instance().Create(name);
    const auto k =
        storage::UploadColumn(backend->stream(), storage::Column(keys));
    const auto v =
        storage::UploadColumn(backend->stream(), storage::Column(data));
    backend->GroupByAggregate(k, v, core::AggOp::kSum);  // warm
    core::ScopedMeasurement scope(backend->stream(), name);
    backend->GroupByAggregate(k, v, core::AggOp::kSum);
    PrintRow(name, scope.Stop());
  }

  PrintHeader("Sort, " + std::to_string(n) + " rows");
  for (const auto& name : core::BackendRegistry::Instance().Names()) {
    auto backend = core::BackendRegistry::Instance().Create(name);
    const auto col =
        storage::UploadColumn(backend->stream(), storage::Column(data));
    backend->Sort(col);  // warm
    core::ScopedMeasurement scope(backend->stream(), name);
    backend->Sort(col);
    PrintRow(name, scope.Stop());
  }

  std::cout << "\n(Deterministic simulated device time; see DESIGN.md for "
               "the cost model.)\n";
  return 0;
}
