// Regenerates Table I: the survey of GPU libraries and their properties.
#include <iostream>

#include "core/survey.h"

int main() {
  std::cout << "TABLE I: Libraries and their properties based on the "
               "paper's survey\n\n";
  core::PrintSurvey(std::cout);
  return 0;
}
