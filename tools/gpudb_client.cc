// gpudb_client: CLI client for gpudb_server.
//
//   gpudb_client --socket=/tmp/gpudb.sock q6 q1 q3     # run queries
//   gpudb_client --socket=/tmp/gpudb.sock --stats      # server counters
//   gpudb_client --socket=/tmp/gpudb.sock --shutdown   # stop the server
//
// Options: --tenant=NAME (default "cli"), --class=interactive|batch|besteffort
// (default interactive), --repeat=N (run the query list N times),
// --retry[=SEED] (sleep out kOverloaded sheds per the server's retry-after
// hint with seeded capped backoff instead of reporting them).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "serve/client.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--tenant=NAME] [--class=CLASS]\n"
               "          [--repeat=N] [--retry[=SEED]] [--stats]\n"
               "          [--shutdown] [QUERY...]\n"
               "       QUERY: q1 | q3 | q4 | q6 | q14\n",
               argv0);
  return 64;
}

void PrintReply(const std::string& query, const serve::QueryReply& reply) {
  if (reply.overloaded) {
    std::printf("%-4s OVERLOADED (shed)  retry after %llu ms\n", query.c_str(),
                static_cast<unsigned long long>(reply.retry_after_ms));
    return;
  }
  if (reply.rejected) {
    std::printf("%-4s REJECTED (admission)  queue_wait %.3f ms\n",
                query.c_str(), reply.queue_wait_ms);
    return;
  }
  std::printf("%-4s %s  sim %.3f ms  wall %.3f ms  queue %.3f ms%s\n",
              query.c_str(), reply.cache_hit ? "hit " : "miss",
              reply.simulated_ns / 1e6, reply.wall_ms, reply.queue_wait_ms,
              reply.aged ? "  [aged]" : "");
  switch (reply.query) {
    case plan::TpchQuery::kQ1:
      for (const tpch::Q1Row& r : reply.result.q1) {
        std::printf("  rf=%d ls=%d sum_qty=%.2f sum_price=%.2f count=%lld\n",
                    r.returnflag, r.linestatus, r.sum_qty, r.sum_base_price,
                    static_cast<long long>(r.count_order));
      }
      break;
    case plan::TpchQuery::kQ3:
      for (const tpch::Q3Row& r : reply.result.q3) {
        std::printf("  orderkey=%d revenue=%.2f\n", r.orderkey, r.revenue);
      }
      break;
    case plan::TpchQuery::kQ4:
      for (const tpch::Q4Row& r : reply.result.q4) {
        std::printf("  priority=%d orders=%lld\n", r.orderpriority,
                    static_cast<long long>(r.order_count));
      }
      break;
    case plan::TpchQuery::kQ6:
    case plan::TpchQuery::kQ14:
      std::printf("  result=%.4f\n", reply.result.scalar);
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tenant = "cli";
  std::string cls_name = "interactive";
  int repeat = 1;
  bool retry = false;
  serve::RetryOptions retry_options;
  bool want_stats = false;
  bool want_shutdown = false;
  std::vector<std::string> queries;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--socket=")) {
      socket_path = v;
    } else if (const char* v = value("--tenant=")) {
      tenant = v;
    } else if (const char* v = value("--class=")) {
      cls_name = v;
    } else if (const char* v = value("--repeat=")) {
      repeat = std::atoi(v);
    } else if (const char* v = value("--retry=")) {
      retry = true;
      retry_options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--retry") {
      retry = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--shutdown") {
      want_shutdown = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      queries.push_back(arg);
    }
  }
  if (socket_path.empty() ||
      (queries.empty() && !want_stats && !want_shutdown)) {
    return Usage(argv[0]);
  }

  try {
    serve::Client client(socket_path, tenant,
                         serve::ParseTenantClass(cls_name));
    const serve::HelloReply& hello = client.hello();
    std::fprintf(stderr,
                 "connected: sf=%g seed=%llu backend=%s encoding=%s\n",
                 hello.scale_factor,
                 static_cast<unsigned long long>(hello.seed),
                 hello.backend.c_str(), hello.encoded ? "on" : "off");
    for (int round = 0; round < repeat; ++round) {
      for (const std::string& q : queries) {
        PrintReply(q, retry ? client.QueryWithRetry(q, retry_options)
                            : client.Query(q));
      }
    }
    if (retry && client.retries() > 0) {
      std::fprintf(stderr, "retried through %llu shed(s)\n",
                   static_cast<unsigned long long>(client.retries()));
    }
    if (want_stats) {
      const serve::StatsReply s = client.Stats();
      std::printf(
          "queries=%llu rejected=%llu failed=%llu overloaded=%llu "
          "cache_hits=%llu cache_misses=%llu cache_size=%llu evictions=%llu "
          "resident_bytes=%llu generation=%llu readmitted=%llu "
          "rebalances=%llu\n",
          static_cast<unsigned long long>(s.queries),
          static_cast<unsigned long long>(s.rejected),
          static_cast<unsigned long long>(s.failed),
          static_cast<unsigned long long>(s.overloaded),
          static_cast<unsigned long long>(s.cache_hits),
          static_cast<unsigned long long>(s.cache_misses),
          static_cast<unsigned long long>(s.cache_size),
          static_cast<unsigned long long>(s.cache_evictions),
          static_cast<unsigned long long>(s.resident_bytes),
          static_cast<unsigned long long>(s.catalog_generation),
          static_cast<unsigned long long>(s.devices_readmitted),
          static_cast<unsigned long long>(s.catalog_rebalances));
    }
    if (want_shutdown) client.Shutdown();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpudb_client: %s\n", e.what());
    return 3;
  }
}
