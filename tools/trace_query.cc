// Captures a kernel-level trace of a TPC-H query on a chosen backend and
// writes it as Chrome trace-event JSON (open in chrome://tracing or
// ui.perfetto.dev) — the simulated equivalent of an nvprof capture.
//
//   build/tools/trace_query [backend] [q1|q6] [out.json]
#include <fstream>
#include <iostream>

#include "core/registry.h"
#include "gpusim/trace.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  core::RegisterBuiltinBackends();
  const std::string backend_name = argc > 1 ? argv[1] : "Thrust";
  const std::string query = argc > 2 ? argv[2] : "q6";
  const std::string out_path = argc > 3 ? argv[3] : "trace.json";

  tpch::Config config;
  config.scale_factor = 0.01;
  const storage::Table lineitem = tpch::GenerateLineitem(config);

  auto backend = core::BackendRegistry::Instance().Create(backend_name);
  const storage::DeviceTable dev =
      storage::UploadTable(backend->stream(), lineitem);

  gpusim::Tracer tracer;
  gpusim::Device::Default().set_tracer(&tracer);
  if (query == "q1") {
    tpch::RunQ1(*backend, dev);
  } else {
    tpch::RunQ6(*backend, dev);
  }
  gpusim::Device::Default().set_tracer(nullptr);

  std::ofstream out(out_path);
  tracer.ExportChromeTrace(out);
  std::cout << "Wrote " << tracer.size() << " events ("
            << backend->name() << ", " << query << ") to " << out_path
            << "\n";
  return 0;
}
