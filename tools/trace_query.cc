// Captures a kernel-level trace of a TPC-H query on a chosen backend and
// writes it as Chrome trace-event JSON (open in chrome://tracing or
// ui.perfetto.dev) — the simulated equivalent of an nvprof capture.
//
//   build/tools/trace_query [backend] [q1|q6|q3|q4|q14] [out.json]
#include <fstream>
#include <iostream>

#include "core/registry.h"
#include "gpusim/trace.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  core::RegisterBuiltinBackends();
  const std::string backend_name = argc > 1 ? argv[1] : "Thrust";
  const std::string query = argc > 2 ? argv[2] : "q6";
  const std::string out_path = argc > 3 ? argv[3] : "trace.json";
  if (query != "q1" && query != "q6" && query != "q3" && query != "q4" &&
      query != "q14") {
    std::cerr << "usage: trace_query [backend] [q1|q6|q3|q4|q14] [out.json]\n";
    return 2;
  }

  tpch::Config config;
  config.scale_factor = 0.01;
  const storage::Table lineitem = tpch::GenerateLineitem(config);

  auto backend = core::BackendRegistry::Instance().Create(backend_name);
  gpusim::Stream& stream = backend->stream();
  const storage::DeviceTable dev_lineitem =
      storage::UploadTable(stream, lineitem);

  gpusim::Tracer tracer;
  gpusim::Device::Default().set_tracer(&tracer);
  if (query == "q1") {
    tpch::RunQ1(*backend, dev_lineitem);
  } else if (query == "q6") {
    tpch::RunQ6(*backend, dev_lineitem);
  } else if (query == "q3") {
    const storage::DeviceTable dev_customer =
        storage::UploadTable(stream, tpch::GenerateCustomer(config));
    const storage::DeviceTable dev_orders =
        storage::UploadTable(stream, tpch::GenerateOrders(config));
    tpch::RunQ3(*backend, dev_customer, dev_orders, dev_lineitem);
  } else if (query == "q4") {
    const storage::DeviceTable dev_orders =
        storage::UploadTable(stream, tpch::GenerateOrders(config));
    tpch::RunQ4(*backend, dev_orders, dev_lineitem);
  } else {  // q14
    const storage::DeviceTable dev_part =
        storage::UploadTable(stream, tpch::GeneratePart(config));
    tpch::RunQ14(*backend, dev_part, dev_lineitem);
  }
  gpusim::Device::Default().set_tracer(nullptr);

  std::ofstream out(out_path);
  tracer.ExportChromeTrace(out);
  std::cout << "Wrote " << tracer.size() << " events ("
            << backend->name() << ", " << query << ") to " << out_path
            << "\n";
  return 0;
}
