// Captures a kernel-level trace of a TPC-H query on a chosen backend and
// writes it as Chrome trace-event JSON (open in chrome://tracing or
// ui.perfetto.dev) — the simulated equivalent of an nvprof capture.
//
// With --chaos-seed=N a seeded gpusim::FaultInjector is attached for the
// query: transient kernel and transfer faults fire probabilistically, the
// query is retried like the scheduler would, and the injected-fault /
// retry event stream is printed inline (fault events also appear in the
// exported trace under the "fault" category).
//
// With --capacity-bytes=N the simulated device capacity shrinks to N and
// the query runs through memory admission (core::MemoryGovernor) and the
// governed spill path (plan/partition.h): admission, partition, and spill
// events print inline and appear in the exported trace under the "memory"
// category.
//
// With --encoded the base tables upload compressed (storage/encoding.h):
// selections run in the encoded domain, survivors decode late, and the
// encoded-transfer counters (bytes moved encoded / bytes saved vs raw)
// print after the run.
//
// With --fleet-readmit=N a fleet of N simulated devices runs the full
// device-lifecycle sequence (lost -> reset -> half-open probe -> readmit)
// after the query, with the same tracer attached: the probe kernel and
// every state transition print inline and land in the exported trace
// under the "fault" category, next to any injected faults.
//
//   build/tools/trace_query [backend] [q1|q6|q3|q4|q14] [out.json]
//                           [--chaos-seed=N] [--capacity-bytes=N] [--encoded]
//                           [--fleet-readmit=N]
#include <fstream>
#include <iostream>
#include <string>

#include "core/error.h"
#include "core/governor.h"
#include "core/registry.h"
#include "core/resilience.h"
#include "gpusim/device_group.h"
#include "gpusim/fault.h"
#include "gpusim/trace.h"
#include "plan/partition.h"
#include "storage/encoded_column.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  core::RegisterBuiltinBackends();
  std::string backend_name = "Thrust";
  std::string query = "q6";
  std::string out_path = "trace.json";
  bool chaos = false;
  uint64_t chaos_seed = 0;
  bool governed = false;
  uint64_t capacity_bytes = 0;
  bool encoded = false;
  int fleet_readmit = 0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--chaos-seed=", 0) == 0) {
      chaos = true;
      chaos_seed = std::stoull(arg.substr(13));
      continue;
    }
    if (arg.rfind("--capacity-bytes=", 0) == 0) {
      governed = true;
      capacity_bytes = std::stoull(arg.substr(17));
      continue;
    }
    if (arg == "--encoded") {
      encoded = true;
      continue;
    }
    if (arg.rfind("--fleet-readmit=", 0) == 0) {
      fleet_readmit = std::stoi(arg.substr(16));
      continue;
    }
    switch (positional++) {
      case 0: backend_name = arg; break;
      case 1: query = arg; break;
      case 2: out_path = arg; break;
      default:
        std::cerr << "unexpected argument: " << arg << "\n";
        return 2;
    }
  }
  if ((query != "q1" && query != "q6" && query != "q3" && query != "q4" &&
       query != "q14") ||
      fleet_readmit < 0) {
    std::cerr << "usage: trace_query [backend] [q1|q6|q3|q4|q14] [out.json] "
                 "[--chaos-seed=N] [--capacity-bytes=N] [--encoded] "
                 "[--fleet-readmit=N]\n";
    return 2;
  }

  tpch::Config config;
  config.scale_factor = 0.01;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  storage::Table customer, orders, part;
  if (query == "q3") {
    customer = tpch::GenerateCustomer(config);
    orders = tpch::GenerateOrders(config);
  } else if (query == "q4") {
    orders = tpch::GenerateOrders(config);
  } else if (query == "q14") {
    part = tpch::GeneratePart(config);
  }

  auto backend = core::BackendRegistry::Instance().Create(backend_name);
  gpusim::Stream& stream = backend->stream();
  gpusim::Device& device = gpusim::Device::Default();

  // Governed mode uploads inside the governed run (slices and all), so the
  // fixture tables stay host-side; ungoverned mode pre-uploads as before.
  storage::DeviceTable dev_lineitem, dev_customer, dev_orders, dev_part;
  if (governed) {
    device.set_memory_capacity(capacity_bytes);
    std::cout << "memory: capacity constrained to " << capacity_bytes
              << " bytes\n";
  } else {
    const auto upload = [&](const storage::Table& t) {
      return encoded ? storage::UploadTableEncoded(stream, t)
                     : storage::UploadTable(stream, t);
    };
    dev_lineitem = upload(lineitem);
    if (query == "q3") {
      dev_customer = upload(customer);
      dev_orders = upload(orders);
    } else if (query == "q4") {
      dev_orders = upload(orders);
    } else if (query == "q14") {
      dev_part = upload(part);
    }
  }

  plan::TpchHostTables tables;
  tables.lineitem = &lineitem;
  tables.orders = &orders;
  tables.customer = &customer;
  tables.part = &part;
  core::GovernorOptions governor_opts;
  governor_opts.device = &device;
  core::MemoryGovernor governor(governor_opts);

  const auto run = [&] {
    if (governed) {
      const plan::TpchQuery q = plan::ParseTpchQuery(query);
      const uint64_t footprint =
          plan::EstimateQueryFootprint(q, tables, backend->name(),
                                       /*partitions=*/1, encoded);
      const core::AdmissionTicket ticket =
          governor.Admit(stream.id(), footprint);
      std::cout << "  admission: requested " << ticket.requested_bytes
                << " B, granted " << ticket.granted_bytes << " B"
                << (ticket.partial() ? " (partial — must partition)" : "")
                << "\n";
      if (!ticket.admitted()) {
        throw std::runtime_error("memory admission rejected");
      }
      plan::GovernedQueryOptions gq;
      gq.use_encoding = encoded;
      gq.on_event = [](const plan::PressureEvent& e) {
        std::cout << "  [" << plan::PressureEventKindName(e.kind) << "] "
                  << e.detail << "\n";
      };
      plan::GovernedRunStats stats;
      try {
        plan::RunGoverned(q, tables, *backend, gq, &stats);
      } catch (...) {
        governor.Release(stream.id());
        throw;
      }
      governor.Release(stream.id());
      std::cout << "  governed run: " << stats.partitions
                << " partition(s), " << stats.oom_fallbacks
                << " OOM fallback(s), spill " << stats.spill_h2d_bytes
                << " B h2d / " << stats.spill_d2h_bytes << " B d2h, "
                << stats.simulated_ns << " simulated ns\n";
      return;
    }
    if (query == "q1") {
      tpch::RunQ1(*backend, dev_lineitem);
    } else if (query == "q6") {
      tpch::RunQ6(*backend, dev_lineitem);
    } else if (query == "q3") {
      tpch::RunQ3(*backend, dev_customer, dev_orders, dev_lineitem);
    } else if (query == "q4") {
      tpch::RunQ4(*backend, dev_orders, dev_lineitem);
    } else {
      tpch::RunQ14(*backend, dev_part, dev_lineitem);
    }
  };

  // Faults are armed after the uploads: the chaos run perturbs the query,
  // not the fixture.
  gpusim::FaultInjector injector(chaos_seed);
  if (chaos) {
    gpusim::FaultRule kernel_rule;
    kernel_rule.site = gpusim::FaultSite::kKernel;
    kernel_rule.kind = gpusim::FaultKind::kTransientKernel;
    kernel_rule.probability = 0.02;
    injector.AddRule(kernel_rule);
    gpusim::FaultRule transfer_rule;
    transfer_rule.site = gpusim::FaultSite::kTransfer;
    transfer_rule.kind = gpusim::FaultKind::kTransfer;
    transfer_rule.probability = 0.02;
    injector.AddRule(transfer_rule);
    gpusim::Device::Default().set_fault_injector(&injector);
    std::cout << "chaos: seed=" << chaos_seed
              << " kernel/transfer fault probability 0.02\n";
  }

  gpusim::Tracer tracer;
  gpusim::Device::Default().set_tracer(&tracer);
  const core::RetryPolicy retry{.max_attempts = 64};
  int attempts = 0;
  for (int attempt = 1;; ++attempt) {
    attempts = attempt;
    size_t faults_before = injector.log().size();
    try {
      run();
      break;
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      const auto& log = injector.log();
      for (size_t k = faults_before; k < log.size(); ++k) {
        const gpusim::InjectedFault& f = log[k];
        std::cout << "  fault[" << k << "] " << gpusim::FaultKindName(f.kind)
                  << " at " << gpusim::FaultSiteName(f.site) << " (stream "
                  << f.stream_id << ", call " << f.call_index << ", rule "
                  << f.rule << ") -> " << core::ErrorMessage(err) << "\n";
      }
      if (core::Classify(err) == core::ErrorClass::kTransient &&
          attempt < retry.max_attempts) {
        std::cout << "  retry " << attempt << ": replaying " << query
                  << " after transient fault\n";
        continue;
      }
      gpusim::Device::Default().set_tracer(nullptr);
      gpusim::Device::Default().set_fault_injector(nullptr);
      std::cerr << "permanent failure after " << attempt
                << " attempts: " << core::ErrorMessage(err) << "\n";
      return 3;
    }
  }
  gpusim::Device::Default().set_tracer(nullptr);
  gpusim::Device::Default().set_fault_injector(nullptr);

  if (fleet_readmit > 0) {
    // Device-lifecycle demo: lose device 0, reset it, run the half-open
    // probe, and readmit. Every transition plus the probe kernel records
    // against the shared tracer, so the exported trace shows the
    // fault-category timeline next to any injected faults above.
    gpusim::DeviceGroup fleet(fleet_readmit);
    for (int d = 0; d < fleet.size(); ++d) fleet.device(d).set_tracer(&tracer);
    fleet.MarkLost(0);
    fleet.MarkReset(0);
    const bool probe_ok = fleet.Probe(0);
    if (probe_ok) fleet.CompleteReadmission(0);
    for (int d = 0; d < fleet.size(); ++d) fleet.device(d).set_tracer(nullptr);
    std::cout << "fleet: device 0 of " << fleet.size()
              << " lost -> reset -> probe "
              << (probe_ok ? "passed -> readmitted" : "FAILED") << "\n";
    for (const gpusim::LifecycleEvent& ev : fleet.lifecycle_log()) {
      std::cout << "  lifecycle[" << ev.sequence << "] device " << ev.device
                << " " << gpusim::LifecycleEventName(ev.kind) << "\n";
    }
    for (const gpusim::TraceEvent& ev : tracer.events()) {
      if (ev.category != "fault") continue;
      std::cout << "  fault-event \"" << ev.name << "\" stream "
                << ev.stream_id << " @ " << ev.start_ns << " ns ("
                << ev.duration_ns << " ns)\n";
    }
  }

  if (encoded) {
    const gpusim::CounterSnapshot counters = device.Snapshot();
    std::cout << "encoded transfers: " << counters.bytes_h2d_encoded
              << " B crossed h2d compressed, " << counters.bytes_saved_vs_raw
              << " B saved vs raw\n";
  }

  std::ofstream out(out_path);
  tracer.ExportChromeTrace(out);
  std::cout << "Wrote " << tracer.size() << " events ("
            << backend->name() << ", " << query << ") to " << out_path
            << "\n";
  if (chaos) {
    const gpusim::FaultInjectorStats fs = injector.stats();
    std::cout << "chaos: " << fs.injected_total() << " faults injected over "
              << fs.checks << " checks, query succeeded on attempt "
              << attempts << "\n";
  }
  return 0;
}
