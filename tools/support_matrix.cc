// Regenerates Table II: mapping of library functions to database operators.
#include <iostream>

#include "core/registry.h"
#include "core/support_matrix.h"

int main() {
  core::RegisterBuiltinBackends();
  std::cout << "TABLE II: Mapping of library functions to database "
               "operators\n\n";
  core::PrintSupportMatrix(std::cout,
                           {"ArrayFire", "Boost.Compute", "Thrust"});
  std::cout << "\nWith the handwritten baseline included:\n\n";
  core::PrintSupportMatrix(
      std::cout, {"ArrayFire", "Boost.Compute", "Thrust", "Handwritten"});
  std::cout << "\nHybrid dispatch (cost-chosen realization per operator):\n\n";
  core::PrintSupportMatrix(std::cout, {"Hybrid"});
  return 0;
}
