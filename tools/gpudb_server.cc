// gpudb_server: the resident query server (serve/server.h) as a process.
//
// Generates the TPC-H tables, uploads them device-resident (encoded by
// default), and serves queries over a UNIX domain socket until a client
// sends shutdown or the process receives SIGINT/SIGTERM.
//
//   gpudb_server --socket=/tmp/gpudb.sock [--sf=0.01] [--seed=42]
//                [--backend=Handwritten] [--clients=4] [--no-encoding]
//                [--cache-capacity=64] [--no-governor]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "core/registry.h"
#include "serve/server.h"

namespace {

serve::QueryServer* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-unsafe in principle, but Stop() only runs pthread/socket
  // teardown; good enough for a dev-tool Ctrl-C. The clean path is the
  // protocol's shutdown message.
  if (g_server != nullptr) std::exit(0);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket=PATH [--sf=F] [--seed=N] [--backend=NAME]\n"
      "          [--clients=N] [--queue-capacity=N] [--cache-capacity=N]\n"
      "          [--no-encoding] [--no-governor]\n",
      argv0);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--socket=")) {
      options.socket_path = v;
    } else if (const char* v = value("--sf=")) {
      options.catalog.scale_factor = std::atof(v);
    } else if (const char* v = value("--seed=")) {
      options.catalog.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--backend=")) {
      options.catalog.backend = v;
    } else if (const char* v = value("--clients=")) {
      options.num_clients = static_cast<unsigned>(std::atoi(v));
    } else if (const char* v = value("--queue-capacity=")) {
      options.queue_capacity = static_cast<size_t>(std::atoi(v));
    } else if (const char* v = value("--cache-capacity=")) {
      options.plan_cache_capacity = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--no-encoding") {
      options.catalog.use_encoding = false;
    } else if (arg == "--no-governor") {
      options.use_governor = false;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) return Usage(argv[0]);

  try {
    core::RegisterBuiltinBackends();
    serve::QueryServer server(options);
    g_server = &server;
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    server.Start();
    const serve::StatsReply stats = server.Stats();
    std::printf(
        "gpudb_server: serving on %s (sf=%g seed=%llu backend=%s "
        "encoding=%s clients=%u resident=%.2f MiB uploaded=%.2f MiB)\n",
        options.socket_path.c_str(), options.catalog.scale_factor,
        static_cast<unsigned long long>(options.catalog.seed),
        options.catalog.backend.c_str(),
        options.catalog.use_encoding ? "on" : "off", options.num_clients,
        stats.resident_bytes / (1024.0 * 1024.0),
        stats.uploaded_bytes / (1024.0 * 1024.0));
    std::fflush(stdout);
    server.WaitForShutdown();
    const serve::StatsReply final_stats = server.Stats();
    server.Stop();
    std::printf(
        "gpudb_server: shutting down after %llu queries "
        "(%llu rejected, %llu failed, plan cache %llu/%llu hits)\n",
        static_cast<unsigned long long>(final_stats.queries),
        static_cast<unsigned long long>(final_stats.rejected),
        static_cast<unsigned long long>(final_stats.failed),
        static_cast<unsigned long long>(final_stats.cache_hits),
        static_cast<unsigned long long>(final_stats.cache_hits +
                                        final_stats.cache_misses));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpudb_server: %s\n", e.what());
    return 3;
  }
}
