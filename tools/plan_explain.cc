// EXPLAIN for TPC-H query plans: builds the logical plan, optimizes it
// (hybrid per-operator dispatch by default, or pinned to one backend),
// executes it on the simulated GPU, and prints each node with its chosen
// backend, estimated cost, boundary-transfer share, and measured simulated
// time.
//
//   build/tools/plan_explain [q1|q6|q3|q4|q14] [--pin=<backend>] [--sf=N]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/registry.h"
#include "plan/executor.h"
#include "plan/explain.h"
#include "plan/optimizer.h"
#include "plan/tpch_plans.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  core::RegisterBuiltinBackends();
  std::string query = "q6";
  std::string pin;
  double sf = 0.01;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pin=", 0) == 0) {
      pin = arg.substr(6);
    } else if (arg.rfind("--sf=", 0) == 0) {
      sf = std::atof(arg.c_str() + 5);
    } else if (arg == "q1" || arg == "q6" || arg == "q3" || arg == "q4" ||
               arg == "q14") {
      query = arg;
    } else {
      std::cerr << "usage: plan_explain [q1|q6|q3|q4|q14] [--pin=<backend>] "
                   "[--sf=N]\n";
      return 2;
    }
  }

  tpch::Config config;
  config.scale_factor = sf;
  // One upload stream for the shared base tables; execution backends only
  // read them.
  auto upload_backend = core::BackendRegistry::Instance().Create("Thrust");
  gpusim::Stream& up = upload_backend->stream();
  const storage::DeviceTable lineitem =
      storage::UploadTable(up, tpch::GenerateLineitem(config));

  // Keep every uploaded table alive for the whole run: plan scans hold
  // pointers into these DeviceTables.
  storage::DeviceTable customer, orders, part;
  plan::QueryPlanBundle bundle;
  if (query == "q1") {
    bundle = plan::BuildQ1Plan(lineitem);
  } else if (query == "q6") {
    bundle = plan::BuildQ6Plan(lineitem);
  } else if (query == "q3") {
    customer = storage::UploadTable(up, tpch::GenerateCustomer(config));
    orders = storage::UploadTable(up, tpch::GenerateOrders(config));
    bundle = plan::BuildQ3Plan(customer, orders, lineitem);
  } else if (query == "q4") {
    orders = storage::UploadTable(up, tpch::GenerateOrders(config));
    bundle = plan::BuildQ4Plan(orders, lineitem);
  } else {  // q14
    part = storage::UploadTable(up, tpch::GeneratePart(config));
    bundle = plan::BuildQ14Plan(part, lineitem);
  }

  plan::OptimizerOptions options;
  options.pin_backend = pin;
  plan::PhysicalPlan phys;
  try {
    phys = plan::Optimize(bundle.plan, options);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  plan::ExecutionResult result;
  if (pin.empty()) {
    result = plan::RunHybrid(phys);
  } else {
    auto backend = core::BackendRegistry::Instance().Create(pin);
    result = plan::RunPinned(phys, *backend);
  }

  std::cout << "EXPLAIN " << query << " (sf=" << sf << ", "
            << (pin.empty() ? std::string("hybrid dispatch")
                            : "pinned to " + pin)
            << ")\n\n";
  std::cout << plan::Explain(phys, result);
  return 0;
}
