// EXPLAIN for TPC-H query plans: builds the logical plan, optimizes it
// (hybrid per-operator dispatch by default, or pinned to one backend),
// executes it on the simulated GPU, and prints each node with its chosen
// backend, estimated cost, boundary-transfer share, and measured simulated
// time.
//
//   build/tools/plan_explain [q1|q6|q3|q4|q14] [--pin=<backend>] [--sf=N]
//                            [--encoded]
//
// With --encoded the base tables upload compressed (storage/encoding.h) and
// the scans section shows each scan's encoding, encoded vs raw bytes, and
// the estimated transfer cost of the encoded upload.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/registry.h"
#include "plan/executor.h"
#include "plan/explain.h"
#include "plan/optimizer.h"
#include "plan/tpch_plans.h"
#include "storage/encoded_column.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  core::RegisterBuiltinBackends();
  std::string query = "q6";
  std::string pin;
  double sf = 0.01;
  bool encoded = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pin=", 0) == 0) {
      pin = arg.substr(6);
    } else if (arg.rfind("--sf=", 0) == 0) {
      sf = std::atof(arg.c_str() + 5);
    } else if (arg == "--encoded") {
      encoded = true;
    } else if (arg == "q1" || arg == "q6" || arg == "q3" || arg == "q4" ||
               arg == "q14") {
      query = arg;
    } else {
      std::cerr << "usage: plan_explain [q1|q6|q3|q4|q14] [--pin=<backend>] "
                   "[--sf=N] [--encoded]\n";
      return 2;
    }
  }

  tpch::Config config;
  config.scale_factor = sf;
  // One upload stream for the shared base tables; execution backends only
  // read them.
  auto upload_backend = core::BackendRegistry::Instance().Create("Thrust");
  gpusim::Stream& up = upload_backend->stream();
  const auto upload = [&](const storage::Table& t) {
    return encoded ? storage::UploadTableEncoded(up, t)
                   : storage::UploadTable(up, t);
  };
  const storage::DeviceTable lineitem = upload(tpch::GenerateLineitem(config));

  // Keep every uploaded table alive for the whole run: plan scans hold
  // pointers into these DeviceTables.
  storage::DeviceTable customer, orders, part;
  plan::QueryPlanBundle bundle;
  if (query == "q1") {
    bundle = plan::BuildQ1Plan(lineitem);
  } else if (query == "q6") {
    bundle = plan::BuildQ6Plan(lineitem);
  } else if (query == "q3") {
    customer = upload(tpch::GenerateCustomer(config));
    orders = upload(tpch::GenerateOrders(config));
    bundle = plan::BuildQ3Plan(customer, orders, lineitem);
  } else if (query == "q4") {
    orders = upload(tpch::GenerateOrders(config));
    bundle = plan::BuildQ4Plan(orders, lineitem);
  } else {  // q14
    part = upload(tpch::GeneratePart(config));
    bundle = plan::BuildQ14Plan(part, lineitem);
  }

  plan::OptimizerOptions options;
  options.pin_backend = pin;
  plan::PhysicalPlan phys;
  try {
    phys = plan::Optimize(bundle.plan, options);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  plan::ExecutionResult result;
  if (pin.empty()) {
    result = plan::RunHybrid(phys);
  } else {
    auto backend = core::BackendRegistry::Instance().Create(pin);
    result = plan::RunPinned(phys, *backend);
  }

  std::cout << "EXPLAIN " << query << " (sf=" << sf << ", "
            << (pin.empty() ? std::string("hybrid dispatch")
                            : "pinned to " + pin)
            << ")\n\n";
  std::cout << plan::Explain(phys, result);
  return 0;
}
