// EXPLAIN for TPC-H query plans: builds the logical plan, optimizes it
// (hybrid per-operator dispatch by default, or pinned to one backend),
// executes it on the simulated GPU, and prints each node with its chosen
// backend, estimated cost, boundary-transfer share, and measured simulated
// time.
//
//   build/tools/plan_explain [q1|q6|q3|q4|q14] [--pin=<backend>] [--sf=N]
//                            [--encoded] [--devices=N] [--shards=K]
//
// With --encoded the base tables upload compressed (storage/encoding.h) and
// the scans section shows each scan's encoding, encoded vs raw bytes, and
// the estimated transfer cost of the encoded upload.
//
// With --devices=N (N > 1) the per-node EXPLAIN is followed by the sharded
// execution plan over an N-device gpusim::DeviceGroup: shard->device
// placement with orderkey-snapped row ranges, every exchange edge (scatter,
// broadcast, gather) with its payload and link route, and the cost-estimated
// exchange operators. --shards overrides the one-shard-per-device default.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/registry.h"
#include "gpusim/device_group.h"
#include "plan/exchange.h"
#include "plan/executor.h"
#include "plan/explain.h"
#include "plan/optimizer.h"
#include "plan/partition.h"
#include "plan/tpch_plans.h"
#include "storage/encoded_column.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  core::RegisterBuiltinBackends();
  std::string query = "q6";
  std::string pin;
  double sf = 0.01;
  bool encoded = false;
  int devices = 1;
  size_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pin=", 0) == 0) {
      pin = arg.substr(6);
    } else if (arg.rfind("--sf=", 0) == 0) {
      sf = std::atof(arg.c_str() + 5);
    } else if (arg == "--encoded") {
      encoded = true;
    } else if (arg.rfind("--devices=", 0) == 0) {
      devices = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = static_cast<size_t>(std::strtoul(arg.c_str() + 9, nullptr, 10));
    } else if (arg == "q1" || arg == "q6" || arg == "q3" || arg == "q4" ||
               arg == "q14") {
      query = arg;
    } else {
      std::cerr << "usage: plan_explain [q1|q6|q3|q4|q14] [--pin=<backend>] "
                   "[--sf=N] [--encoded] [--devices=N] [--shards=K]\n";
      return 2;
    }
  }
  if (devices < 1) {
    std::cerr << "error: --devices must be >= 1\n";
    return 2;
  }

  tpch::Config config;
  config.scale_factor = sf;
  // One upload stream for the shared base tables; execution backends only
  // read them.
  auto upload_backend = core::BackendRegistry::Instance().Create("Thrust");
  gpusim::Stream& up = upload_backend->stream();
  const auto upload = [&](const storage::Table& t) {
    return encoded ? storage::UploadTableEncoded(up, t)
                   : storage::UploadTable(up, t);
  };
  // Host tables stay alive for the whole run: the sharded planner reads them
  // and plan scans hold pointers into their device uploads.
  const storage::Table host_lineitem = tpch::GenerateLineitem(config);
  storage::Table host_customer, host_orders, host_part;
  const storage::DeviceTable lineitem = upload(host_lineitem);

  storage::DeviceTable customer, orders, part;
  plan::QueryPlanBundle bundle;
  if (query == "q1") {
    bundle = plan::BuildQ1Plan(lineitem);
  } else if (query == "q6") {
    bundle = plan::BuildQ6Plan(lineitem);
  } else if (query == "q3") {
    host_customer = tpch::GenerateCustomer(config);
    host_orders = tpch::GenerateOrders(config);
    customer = upload(host_customer);
    orders = upload(host_orders);
    bundle = plan::BuildQ3Plan(customer, orders, lineitem);
  } else if (query == "q4") {
    host_orders = tpch::GenerateOrders(config);
    orders = upload(host_orders);
    bundle = plan::BuildQ4Plan(orders, lineitem);
  } else {  // q14
    host_part = tpch::GeneratePart(config);
    part = upload(host_part);
    bundle = plan::BuildQ14Plan(part, lineitem);
  }

  plan::OptimizerOptions options;
  options.pin_backend = pin;
  plan::PhysicalPlan phys;
  try {
    phys = plan::Optimize(bundle.plan, options);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  plan::ExecutionResult result;
  if (pin.empty()) {
    result = plan::RunHybrid(phys);
  } else {
    auto backend = core::BackendRegistry::Instance().Create(pin);
    result = plan::RunPinned(phys, *backend);
  }

  std::cout << "EXPLAIN " << query << " (sf=" << sf << ", "
            << (pin.empty() ? std::string("hybrid dispatch")
                            : "pinned to " + pin)
            << ")\n\n";
  std::cout << plan::Explain(phys, result);

  if (devices > 1 || shards > 0) {
    plan::TpchHostTables tables;
    tables.lineitem = &host_lineitem;
    tables.orders = host_orders.num_rows() > 0 ? &host_orders : nullptr;
    tables.customer = host_customer.num_rows() > 0 ? &host_customer : nullptr;
    tables.part = host_part.num_rows() > 0 ? &host_part : nullptr;
    gpusim::DeviceGroup group(devices);
    const plan::ShardedPlanSpec spec = plan::PlanShardedExecution(
        plan::ParseTpchQuery(query), tables, group, shards);
    const std::string explain_backend = pin.empty() ? "Handwritten" : pin;
    std::cout << "\n" << plan::ExplainSharded(spec, group, explain_backend);
  }
  return 0;
}
