// Host wall-clock throughput of the gpusim primitive hot paths.
//
// Unlike every other bench in this directory, this one reports *real* time:
// it measures what the simulator itself costs on the host (allocator,
// kernel-launch dispatch, thread-pool rendezvous), which bounds how fast the
// whole suite can run. Simulated time is charged as usual but not reported.
// Pool allocator effectiveness shows up as the pool_hits / pool_misses
// counters: after the first iteration every scratch buffer of the multi-pass
// primitives should be served from the device pool.
#include "bench_common.h"

#include "gpusim/algorithms.h"

namespace bench {

enum class HotPath { kReduce, kScan, kSort, kCompact, kAllocFree };

const char* HotPathName(HotPath p) {
  switch (p) {
    case HotPath::kReduce: return "Reduce";
    case HotPath::kScan: return "Scan";
    case HotPath::kSort: return "Sort";
    case HotPath::kCompact: return "Compact";
    case HotPath::kAllocFree: return "AllocFree";
  }
  return "?";
}

void WallClockBench(benchmark::State& state, HotPath path) {
  const size_t n = static_cast<size_t>(state.range(0));
  gpusim::Device device;  // fresh device: pool warms up during the run
  gpusim::Stream stream(device, gpusim::ApiProfile::Cuda());

  const auto ints = UniformInts(n, 1 << 20);
  gpusim::DeviceArray<int32_t> in = gpusim::ToDevice(stream, ints, device);
  gpusim::DeviceArray<int32_t> out(n, device);
  gpusim::DeviceArray<int32_t> keys(n, device);

  const auto start = device.Snapshot();
  for (auto _ : state) {
    switch (path) {
      case HotPath::kReduce:
        benchmark::DoNotOptimize(gpusim::Reduce(
            stream, in.data(), n, int32_t{0},
            [](int32_t a, int32_t b) { return a + b; }));
        break;
      case HotPath::kScan:
        gpusim::InclusiveScan(stream, in.data(), out.data(), n,
                              [](int32_t a, int32_t b) { return a + b; });
        break;
      case HotPath::kSort:
        gpusim::CopyDeviceToDevice(stream, keys.data(), in.data(),
                                   n * sizeof(int32_t));
        gpusim::RadixSortKeys(stream, keys.data(), n);
        break;
      case HotPath::kCompact:
        benchmark::DoNotOptimize(
            gpusim::CopyIf(stream, in.data(), n, out.data(),
                           [](int32_t v) { return (v & 1) == 0; }));
        break;
      case HotPath::kAllocFree: {
        // Pure allocator churn at the scratch sizes the primitives use.
        gpusim::DeviceArray<uint32_t> a(n / 1024 + 1, device);
        gpusim::DeviceArray<uint32_t> b(n, device);
        benchmark::DoNotOptimize(a.data());
        benchmark::DoNotOptimize(b.data());
        break;
      }
    }
  }
  const auto delta = device.Snapshot().Delta(start);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.counters["pool_hits"] = static_cast<double>(delta.pool_hits);
  state.counters["pool_misses"] = static_cast<double>(delta.pool_misses);
  state.counters["bytes_pooled"] = static_cast<double>(delta.bytes_pooled);
  state.counters["hit_rate"] =
      delta.pool_hits + delta.pool_misses > 0
          ? static_cast<double>(delta.pool_hits) /
                static_cast<double>(delta.pool_hits + delta.pool_misses)
          : 0.0;
}

void RegisterBenchmarks() {
  for (const HotPath path :
       {HotPath::kReduce, HotPath::kScan, HotPath::kSort, HotPath::kCompact,
        HotPath::kAllocFree}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("WallClock/") + HotPathName(path)).c_str(),
        [path](benchmark::State& s) { WallClockBench(s, path); });
    for (const int64_t n : {1 << 14, 1 << 20}) b->Arg(n);
  }
}

}  // namespace bench

BENCH_MAIN()
