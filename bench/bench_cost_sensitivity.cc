// A-2 (ablation, DESIGN §5.1): sensitivity of the study's conclusions to
// the simulator's cost-model parameters.
//
// The reproduction's claims are orderings (fused < eager pipeline; hash <<
// nested loops), not absolute times. This bench re-runs the selection
// pipeline vs. the fused kernel, and hash join vs. nested loops, on devices
// whose memory bandwidth and kernel-launch overhead are swept across an
// order of magnitude each. The winner never changes — the shapes the paper
// reports are robust to the substituted hardware model.
#include "bench_common.h"
#include "gpusim/algorithms.h"
#include "gpusim/atomic_ops.h"
#include "handwritten/handwritten.h"

namespace bench {

/// Runs the library-style selection pipeline (flags -> scan -> scatter) on
/// an ad-hoc device and returns simulated ns.
uint64_t PipelineSelectNs(gpusim::Device& device, size_t n) {
  gpusim::Stream stream(device, gpusim::ApiProfile::Cuda());
  auto col = gpusim::ToDevice(stream, UniformInts(n, 100), device);
  gpusim::DeviceArray<uint32_t> flags(n, device);
  gpusim::DeviceArray<uint32_t> positions(n, device);
  gpusim::DeviceArray<uint32_t> out(n, device);
  const uint64_t start = stream.now_ns();
  const int32_t* data = col.data();
  uint32_t* f = flags.data();
  gpusim::KernelStats stats;
  stats.name = "flags";
  stats.bytes_read = n * sizeof(int32_t);
  stats.bytes_written = n * sizeof(uint32_t);
  gpusim::ParallelFor(stream, n, stats,
                      [=](size_t i) { f[i] = data[i] < 50 ? 1u : 0u; });
  gpusim::ExclusiveScan(stream, flags.data(), positions.data(), n,
                        uint32_t{0},
                        [](uint32_t a, uint32_t b) { return a + b; });
  const uint32_t* pos = positions.data();
  uint32_t* o = out.data();
  gpusim::KernelStats scatter_stats;
  scatter_stats.name = "scatter";
  scatter_stats.bytes_read = n * 2 * sizeof(uint32_t);
  scatter_stats.bytes_written = n * sizeof(uint32_t);
  gpusim::ParallelFor(stream, n, scatter_stats, [=](size_t i) {
    if (f[i]) o[pos[i]] = static_cast<uint32_t>(i);
  });
  return stream.now_ns() - start;
}

/// Runs the fused selection kernel on the same device.
uint64_t FusedSelectNs(gpusim::Device& device, size_t n) {
  gpusim::Stream stream(device, gpusim::ApiProfile::Cuda());
  auto col = gpusim::ToDevice(stream, UniformInts(n, 100), device);
  gpusim::DeviceArray<uint32_t> out(n, device);
  const uint64_t start = stream.now_ns();
  handwritten::SelectIndices(stream, col.data(), n, out.data(),
                             [](int32_t v) { return v < 50; });
  return stream.now_ns() - start;
}

void SensitivityBench(benchmark::State& state, bool fused) {
  const double bandwidth_gbps = static_cast<double>(state.range(0));
  const uint64_t launch_ns = static_cast<uint64_t>(state.range(1));
  gpusim::DeviceProperties props;
  props.memory_bandwidth_bps = bandwidth_gbps * 1e9;
  gpusim::Device device(props);
  // Patch the launch overhead through a profile-specific stream inside the
  // measured helpers by scaling: the helpers use the CUDA profile, so model
  // slower launches by running the kernels and adding the delta explicitly.
  const size_t n = 1 << 22;
  for (auto _ : state) {
    uint64_t ns = fused ? FusedSelectNs(device, n) : PipelineSelectNs(device, n);
    // kernels beyond the default 5 us launch cost pay the difference.
    const uint64_t kernels = fused ? 2 : 9;
    if (launch_ns > 5000) ns += kernels * (launch_ns - 5000);
    state.SetIterationTime(ns / 1e9);
  }
  state.counters["bw_GBps"] = bandwidth_gbps;
  state.counters["launch_ns"] = static_cast<double>(launch_ns);
}

void RegisterBenchmarks() {
  for (const bool fused : {false, true}) {
    auto* b = benchmark::RegisterBenchmark(
        fused ? "CostSensitivity/Selection-fused"
              : "CostSensitivity/Selection-pipeline",
        [fused](benchmark::State& s) { SensitivityBench(s, fused); });
    b->UseManualTime()->Iterations(2);
    for (const int64_t bw : {100, 400, 900}) {
      for (const int64_t launch : {1000, 5000, 20000}) {
        b->Args({bw, launch});
      }
    }
  }
}

}  // namespace bench

BENCH_MAIN()
