// R-F4: Sort and sort-by-key vs. row count.
//
// All libraries map to an LSD radix sort (Table II: sort()/sort_by_key());
// the differences are per-call API overhead and, for Boost.Compute, kernel
// compilation (warmed away here) plus lower effective throughput.
#include "bench_common.h"

namespace bench {

void SortBench(benchmark::State& state, const std::string& name,
               bool by_key) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto backend = core::BackendRegistry::Instance().Create(name);
  const auto keys = Upload(*backend, UniformInts(n, 1 << 30));
  const auto vals = Upload(*backend, UniformDoubles(n, 1000.0));
  if (by_key) {
    backend->SortByKey(keys, vals);  // warm
  } else {
    backend->Sort(keys);  // warm
  }

  for (auto _ : state) {
    Region region(*backend);
    if (by_key) {
      benchmark::DoNotOptimize(backend->SortByKey(keys, vals));
    } else {
      benchmark::DoNotOptimize(backend->Sort(keys));
    }
    region.Stop(state);
  }
  state.counters["rows"] = static_cast<double>(n);
}

void RegisterBenchmarks() {
  for (const bool by_key : {false, true}) {
    const char* kind = by_key ? "SortByKey" : "Sort";
    for (const auto& name : AllBackendNames()) {
      auto* b = benchmark::RegisterBenchmark(
          (std::string(kind) + "/" + name).c_str(),
          [name, by_key](benchmark::State& s) { SortBench(s, name, by_key); });
      b->UseManualTime()->Iterations(2);
      for (const int64_t n : {1 << 16, 1 << 18, 1 << 20, 1 << 22}) b->Arg(n);
    }
  }
}

}  // namespace bench

BENCH_MAIN()
