// R-F3: Conjunctive and disjunctive selection with 2..4 predicates.
//
// Table II realizations: Thrust/Boost combine per-predicate flag vectors
// with bit_and/bit_or (one extra transform per predicate); ArrayFire
// intersects/unions per-predicate where() index sets (setIntersect/
// setUnion); handwritten evaluates all predicates in one fused kernel.
#include "bench_common.h"

namespace bench {

void ConjunctionBench(benchmark::State& state, const std::string& name,
                      bool conjunctive) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int num_preds = static_cast<int>(state.range(1));
  auto backend = core::BackendRegistry::Instance().Create(name);

  std::vector<storage::DeviceColumn> cols;
  std::vector<const storage::DeviceColumn*> col_ptrs;
  std::vector<core::Predicate> preds;
  for (int p = 0; p < num_preds; ++p) {
    cols.push_back(Upload(*backend, UniformInts(n, 100, 100 + p)));
  }
  for (int p = 0; p < num_preds; ++p) {
    col_ptrs.push_back(&cols[p]);
    // ~70% per predicate: conjunction ~0.7^k, disjunction saturates.
    preds.push_back(
        core::Predicate::Make("c" + std::to_string(p), core::CompareOp::kLt,
                              70.0));
  }
  auto run = [&] {
    return conjunctive ? backend->SelectConjunctive(col_ptrs, preds)
                       : backend->SelectDisjunctive(col_ptrs, preds);
  };
  run();  // warm program cache

  size_t selected = 0;
  for (auto _ : state) {
    Region region(*backend);
    const auto sel = run();
    region.Stop(state);
    selected = sel.count;
  }
  state.counters["selected"] = static_cast<double>(selected);
}

void RegisterBenchmarks() {
  for (const bool conjunctive : {true, false}) {
    const char* kind = conjunctive ? "Conjunction" : "Disjunction";
    for (const auto& name : AllBackendNames()) {
      auto* b = benchmark::RegisterBenchmark(
          (std::string(kind) + "/" + name).c_str(),
          [name, conjunctive](benchmark::State& s) {
            ConjunctionBench(s, name, conjunctive);
          });
      b->UseManualTime()->Iterations(3);
      for (const int64_t p : {2, 3, 4}) b->Args({1 << 20, p});
    }
  }
}

}  // namespace bench

BENCH_MAIN()
