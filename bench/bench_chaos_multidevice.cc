// Chaos acceptance gate for device-loss-tolerant sharded execution and the
// hardened serving tier.
//
// Phase A — degraded-mode sweep: for every seed x query, a 4-device
// gpusim::DeviceGroup runs the query sharded while one victim device takes a
// sticky DeviceLost mid-run (per-device injector, seeded) and every device
// carries a low-probability transient TransferFault rule. The run must
// complete in degraded mode on the survivors, every answer must match the
// host reference, and no run may fail permanently while at least one device
// survives. A zero-fault gate then re-runs each query with armed but
// rule-less injectors and demands a simulated timeline bit-identical to the
// bare group — the fault plumbing must be timing-invisible when silent.
//
// Phase B — serving tier under attack: a QueryServer takes a connection
// flood past its cap (typed kOverloaded with retry-after), a stream of
// malformed/truncated/oversized frames (typed kError, counted, never fatal),
// and a tripped per-device breaker (queries shed until the half-open probe
// heals it). The server must never crash and must still answer correctly
// afterwards.
//
// Phase C — kill -> degrade -> reset -> re-admit -> re-converge: for every
// seed x query, a one-shot DeviceLost kills the victim mid-run (the run
// degrades onto the survivors, reusing the victim's host-checkpointed
// slices), the operator resets the victim (MarkReset), and the SAME group
// runs the query again: the run-start half-open probe re-admits the victim,
// the answer must match the host reference, the recovered run must land
// within 5% of a never-killed baseline, and replaying the whole sequence on
// a second identical group must reproduce the placement and the simulated
// timeline exactly. Across the whole matrix at least one checkpointed slice
// must have been reused (otherwise the kill schedule proved nothing).
//
// Exit codes: 0 ok, 2 permanent query failure, 3 wrong answer, 4 zero-fault
// timeline drift, 5 serving-tier failure, 6 no checkpointed slice reused,
// 7 readmission failure (probe refused / non-deterministic replay / >5%
// throughput regression after re-admission), 64 usage.
//
// Usage:
//   bench_chaos_multidevice [--seeds=1,2,3,4,5] [--sf=0.02]
//                           [--queries=q1,q3,q4,q6,q14] [--shards=8]
//                           [--skip-server] [--skip-readmit] [--json=FILE]
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "backends/backends.h"
#include "core/registry.h"
#include "core/resilience.h"
#include "gpusim/device_group.h"
#include "gpusim/fault.h"
#include "plan/exchange.h"
#include "plan/partition.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

constexpr int kExitPermanentFailure = 2;
constexpr int kExitWrongAnswer = 3;
constexpr int kExitTimelineDrift = 4;
constexpr int kExitServerFailure = 5;
constexpr int kExitNoCheckpointReuse = 6;
constexpr int kExitReadmissionFailure = 7;

struct Options {
  std::vector<uint64_t> seeds = {1, 2, 3, 4, 5};
  double scale_factor = 0.02;
  std::vector<std::string> queries = {"q1", "q3", "q4", "q6", "q14"};
  size_t force_shards = 8;
  bool skip_server = false;
  bool skip_readmit = false;
  std::string json_path;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--seeds=")) {
      opts->seeds.clear();
      for (const auto& s : SplitCsv(v)) opts->seeds.push_back(std::stoull(s));
    } else if (const char* v = value("--sf=")) {
      opts->scale_factor = std::stod(v);
    } else if (const char* v = value("--queries=")) {
      opts->queries = SplitCsv(v);
    } else if (const char* v = value("--shards=")) {
      opts->force_shards = std::stoul(v);
    } else if (arg == "--skip-server") {
      opts->skip_server = true;
    } else if (arg == "--skip-readmit") {
      opts->skip_readmit = true;
    } else if (const char* v = value("--json=")) {
      opts->json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->seeds.empty() && !opts->queries.empty();
}

struct References {
  std::vector<tpch::Q1Row> q1;
  std::vector<tpch::Q3Row> q3;
  std::vector<tpch::Q4Row> q4;
  double q6 = 0;
  double q14 = 0;
};

bool Near(double got, double want) {
  return std::abs(got - want) <= std::abs(want) * 1e-9 + 1e-6;
}

bool Verify(plan::TpchQuery q, const plan::TpchQueryResult& got,
            const References& ref, std::string* why) {
  switch (q) {
    case plan::TpchQuery::kQ1: {
      if (got.q1.size() != ref.q1.size()) {
        *why = "q1 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q1.size(); ++i) {
        const tpch::Q1Row& g = got.q1[i];
        const tpch::Q1Row& w = ref.q1[i];
        if (g.returnflag != w.returnflag || g.linestatus != w.linestatus ||
            g.count_order != w.count_order || !Near(g.sum_qty, w.sum_qty) ||
            !Near(g.sum_charge, w.sum_charge) ||
            !Near(g.avg_price, w.avg_price)) {
          *why = "q1 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ3: {
      if (got.q3.size() != ref.q3.size()) {
        *why = "q3 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q3.size(); ++i) {
        if (got.q3[i].orderkey != ref.q3[i].orderkey ||
            !Near(got.q3[i].revenue, ref.q3[i].revenue)) {
          *why = "q3 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ4: {
      if (got.q4.size() != ref.q4.size()) {
        *why = "q4 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q4.size(); ++i) {
        if (got.q4[i].orderpriority != ref.q4[i].orderpriority ||
            got.q4[i].order_count != ref.q4[i].order_count) {
          *why = "q4 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ6:
      if (!Near(got.scalar, ref.q6)) {
        *why = "q6 scalar mismatch";
        return false;
      }
      return true;
    case plan::TpchQuery::kQ14:
      if (!Near(got.scalar, ref.q14)) {
        *why = "q14 scalar mismatch";
        return false;
      }
      return true;
  }
  *why = "unknown query";
  return false;
}

struct ChaosPoint {
  uint64_t seed = 0;
  std::string query;
  int victim = 0;
  int devices_lost = 0;
  int recovery_rounds = 0;
  size_t replaced_shards = 0;
  uint64_t transfer_retries = 0;
  uint64_t sim_ns = 0;
  bool ok = true;
};

/// Arms the per-seed fault schedule on a fresh 4-device group: a sticky
/// DeviceLost on the victim's kernel stream plus low-probability transient
/// TransferFaults on every device.
int ArmChaos(gpusim::DeviceGroup& group, uint64_t seed) {
  const int victim = static_cast<int>(seed % 4);
  for (int d = 0; d < group.size(); ++d) {
    gpusim::FaultInjector& inj = group.ArmFaultInjector(d, seed);
    gpusim::FaultRule transient;
    transient.site = gpusim::FaultSite::kTransfer;
    transient.kind = gpusim::FaultKind::kTransfer;
    transient.probability = 0.03;
    transient.max_fires = 2;
    inj.AddRule(transient);
    if (d == victim) {
      gpusim::FaultRule kill;
      kill.site = gpusim::FaultSite::kKernel;
      kill.kind = gpusim::FaultKind::kDeviceLost;
      kill.at_call = 2 + seed % 7;
      inj.AddRule(kill);
    }
  }
  return victim;
}

int RunChaosSweep(const Options& opts, const plan::TpchHostTables& tables,
                  const References& ref, std::vector<ChaosPoint>* points) {
  std::printf("%6s %5s %7s %5s %7s %9s %8s %11s %5s\n", "seed", "query",
              "victim", "lost", "rounds", "replaced", "retries", "sim_ms",
              "ok");
  for (const uint64_t seed : opts.seeds) {
    for (const std::string& qname : opts.queries) {
      const plan::TpchQuery q = plan::ParseTpchQuery(qname);
      gpusim::DeviceGroup group(4);
      ChaosPoint p;
      p.seed = seed;
      p.query = qname;
      p.victim = ArmChaos(group, seed);

      plan::ShardedQueryOptions sq;
      sq.force_shards = opts.force_shards;
      plan::ShardedRunStats stats;
      plan::TpchQueryResult result;
      try {
        result = plan::RunSharded(q, tables, group, backends::kHandwritten,
                                  sq, &stats);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "  PERMANENT seed=%llu %s: %s (alive=%d of 4)\n",
                     static_cast<unsigned long long>(seed), qname.c_str(),
                     e.what(), group.AliveCount());
        return kExitPermanentFailure;
      }

      p.devices_lost = stats.devices_lost;
      p.recovery_rounds = stats.recovery_rounds;
      p.replaced_shards = stats.replaced_shards;
      p.transfer_retries = stats.transfer_retries;
      p.sim_ns = stats.simulated_ns;

      std::string why;
      if (!Verify(q, result, ref, &why)) {
        std::fprintf(stderr, "  WRONG seed=%llu %s: %s\n",
                     static_cast<unsigned long long>(seed), qname.c_str(),
                     why.c_str());
        p.ok = false;
      }
      if (group.IsAlive(p.victim)) {
        std::fprintf(stderr,
                     "  seed=%llu %s: victim %d survived — fault schedule "
                     "never fired\n",
                     static_cast<unsigned long long>(seed), qname.c_str(),
                     p.victim);
        p.ok = false;
      }

      std::printf("%6llu %5s %7d %5d %7d %9zu %8llu %11.3f %5s\n",
                  static_cast<unsigned long long>(seed), qname.c_str(),
                  p.victim, p.devices_lost, p.recovery_rounds,
                  p.replaced_shards,
                  static_cast<unsigned long long>(p.transfer_retries),
                  p.sim_ns / 1e6, p.ok ? "OK" : "WRONG");
      const bool ok = p.ok;
      points->push_back(std::move(p));
      if (!ok) return kExitWrongAnswer;
    }
  }
  return 0;
}

/// Zero-fault gate: armed but rule-less injectors must not move the
/// simulated timeline by a single nanosecond versus a bare group.
int RunZeroFaultGate(const Options& opts, const plan::TpchHostTables& tables) {
  for (const std::string& qname : opts.queries) {
    const plan::TpchQuery q = plan::ParseTpchQuery(qname);
    plan::ShardedQueryOptions sq;
    sq.force_shards = opts.force_shards;

    gpusim::DeviceGroup bare(4);
    plan::ShardedRunStats bare_stats;
    (void)plan::RunSharded(q, tables, bare, backends::kHandwritten, sq,
                           &bare_stats);

    gpusim::DeviceGroup armed(4);
    for (int d = 0; d < armed.size(); ++d) armed.ArmFaultInjector(d, 7);
    plan::ShardedRunStats armed_stats;
    (void)plan::RunSharded(q, tables, armed, backends::kHandwritten, sq,
                           &armed_stats);

    if (armed_stats.simulated_ns != bare_stats.simulated_ns) {
      std::fprintf(stderr,
                   "  DRIFT %s: armed %llu ns != bare %llu ns\n",
                   qname.c_str(),
                   static_cast<unsigned long long>(armed_stats.simulated_ns),
                   static_cast<unsigned long long>(bare_stats.simulated_ns));
      return kExitTimelineDrift;
    }
    std::printf("  zero-fault %-4s %llu ns (bit-identical)\n", qname.c_str(),
                static_cast<unsigned long long>(bare_stats.simulated_ns));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Phase C: kill -> degrade -> reset -> re-admit -> re-converge.

struct ReadmitPoint {
  uint64_t seed = 0;
  std::string query;
  int victim = 0;
  uint64_t degraded_ns = 0;   ///< sim makespan of the run the kill hit
  uint64_t recovered_ns = 0;  ///< sim makespan after reset + readmission
  uint64_t baseline_ns = 0;   ///< never-killed fresh-group reference
  size_t checkpoints_reused = 0;
  int readmitted = 0;
  bool deterministic = false;
};

/// One kill -> degrade -> reset -> rerun sequence on a fresh group. The kill
/// is a one-shot (max_fires = 1) so it cannot re-fire on the rerun's fresh
/// streams after the sticky loss is cleared by the reset.
struct SequenceOutcome {
  plan::ShardedRunStats degraded;
  plan::ShardedRunStats recovered;
  plan::TpchQueryResult degraded_result;
  plan::TpchQueryResult recovered_result;
  std::vector<size_t> placement;  ///< per-device shard counts of the rerun
  bool victim_died = false;
  bool victim_back = false;
};

SequenceOutcome RunKillResetSequence(plan::TpchQuery q,
                                     const plan::TpchHostTables& tables,
                                     const Options& opts, uint64_t seed,
                                     int victim) {
  core::ResilienceManager::Global().Reset();
  gpusim::DeviceGroup group(4);
  gpusim::FaultInjector& inj = group.ArmFaultInjector(victim, seed);
  // Later than phase A's kill so the victim finishes at least one slice
  // first — that checkpointed slice is what the degraded run must reuse.
  gpusim::FaultRule kill;
  kill.site = gpusim::FaultSite::kKernel;
  kill.kind = gpusim::FaultKind::kDeviceLost;
  kill.at_call = 6 + seed % 7;
  kill.max_fires = 1;
  inj.AddRule(kill);

  plan::ShardedQueryOptions sq;
  sq.force_shards = opts.force_shards;

  SequenceOutcome out;
  out.degraded_result =
      plan::RunSharded(q, tables, group, backends::kHandwritten, sq,
                       &out.degraded);
  out.victim_died = !group.IsAlive(victim);

  group.MarkReset(victim);  // operator resets the lost device
  out.recovered_result =
      plan::RunSharded(q, tables, group, backends::kHandwritten, sq,
                       &out.recovered);
  out.victim_back = group.IsAlive(victim);
  for (const plan::DeviceShardStats& ds : out.recovered.per_device) {
    out.placement.push_back(ds.shards);
  }
  core::ResilienceManager::Global().Reset();
  return out;
}

int RunReadmissionPhase(const Options& opts, const plan::TpchHostTables& tables,
                        const References& ref,
                        std::vector<ReadmitPoint>* points,
                        size_t* total_reuse) {
  std::printf("%6s %5s %7s %6s %8s %12s %12s %12s %5s\n", "seed", "query",
              "victim", "readm", "ckpt", "degraded_ms", "recover_ms",
              "baseline_ms", "ok");
  for (const uint64_t seed : opts.seeds) {
    for (const std::string& qname : opts.queries) {
      const plan::TpchQuery q = plan::ParseTpchQuery(qname);
      const int victim = static_cast<int>(seed % 4);

      // Never-killed reference on a bare group: the recovered run must get
      // back within 5% of this (in practice it is bit-identical — same
      // four-alive placement, no fault charges).
      plan::ShardedQueryOptions sq;
      sq.force_shards = opts.force_shards;
      gpusim::DeviceGroup bare(4);
      plan::ShardedRunStats baseline;
      (void)plan::RunSharded(q, tables, bare, backends::kHandwritten, sq,
                             &baseline);

      SequenceOutcome first;
      try {
        first = RunKillResetSequence(q, tables, opts, seed, victim);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "  PERMANENT seed=%llu %s: %s\n",
                     static_cast<unsigned long long>(seed), qname.c_str(),
                     e.what());
        return kExitPermanentFailure;
      }

      ReadmitPoint p;
      p.seed = seed;
      p.query = qname;
      p.victim = victim;
      p.degraded_ns = first.degraded.simulated_ns;
      p.recovered_ns = first.recovered.simulated_ns;
      p.baseline_ns = baseline.simulated_ns;
      p.checkpoints_reused = first.degraded.checkpointed_slices_reused;
      p.readmitted = first.recovered.devices_readmitted;
      *total_reuse += p.checkpoints_reused;

      std::string why;
      bool ok = true;
      if (!first.victim_died) {
        std::fprintf(stderr, "  seed=%llu %s: kill never fired\n",
                     static_cast<unsigned long long>(seed), qname.c_str());
        ok = false;
      }
      if (ok && (!Verify(q, first.degraded_result, ref, &why) ||
                 !Verify(q, first.recovered_result, ref, &why))) {
        std::fprintf(stderr, "  WRONG seed=%llu %s: %s\n",
                     static_cast<unsigned long long>(seed), qname.c_str(),
                     why.c_str());
        return kExitWrongAnswer;
      }
      if (ok && (!first.victim_back || first.recovered.devices_readmitted < 1)) {
        std::fprintf(stderr, "  seed=%llu %s: victim never readmitted\n",
                     static_cast<unsigned long long>(seed), qname.c_str());
        ok = false;
      }
      // Re-converge: the recovered run must be within 5% of never-killed.
      if (ok && p.recovered_ns >
                    baseline.simulated_ns + baseline.simulated_ns / 20) {
        std::fprintf(stderr,
                     "  seed=%llu %s: recovered %llu ns > baseline %llu ns "
                     "+5%%\n",
                     static_cast<unsigned long long>(seed), qname.c_str(),
                     static_cast<unsigned long long>(p.recovered_ns),
                     static_cast<unsigned long long>(baseline.simulated_ns));
        ok = false;
      }
      // Determinism: the identical sequence on a second identical group must
      // reproduce the placement and the simulated timeline exactly.
      if (ok) {
        const SequenceOutcome second =
            RunKillResetSequence(q, tables, opts, seed, victim);
        p.deterministic =
            second.degraded.simulated_ns == first.degraded.simulated_ns &&
            second.recovered.simulated_ns == first.recovered.simulated_ns &&
            second.placement == first.placement &&
            second.recovered.devices_readmitted ==
                first.recovered.devices_readmitted &&
            second.degraded.checkpointed_slices_reused ==
                first.degraded.checkpointed_slices_reused;
        if (!p.deterministic) {
          std::fprintf(stderr, "  seed=%llu %s: replay diverged\n",
                       static_cast<unsigned long long>(seed), qname.c_str());
          ok = false;
        }
      }

      std::printf("%6llu %5s %7d %6d %8zu %12.3f %12.3f %12.3f %5s\n",
                  static_cast<unsigned long long>(seed), qname.c_str(), victim,
                  p.readmitted, p.checkpoints_reused, p.degraded_ns / 1e6,
                  p.recovered_ns / 1e6, p.baseline_ns / 1e6,
                  ok ? "OK" : "FAIL");
      points->push_back(std::move(p));
      if (!ok) return kExitReadmissionFailure;
    }
  }
  if (*total_reuse == 0) {
    std::fprintf(stderr,
                 "  no checkpointed slice was ever reused — the kill "
                 "schedule proved nothing\n");
    return kExitNoCheckpointReuse;
  }
  std::printf("  checkpointed slices reused across the matrix: %zu\n",
              *total_reuse);
  return 0;
}

// ---------------------------------------------------------------------------
// Phase B: the serving tier under flood, garbage, and a tripped breaker.

int RawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendRaw(int fd, const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: the server may hang up mid-blob; that is the scenario
    // under test, not a reason to die of SIGPIPE.
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

struct ServerOutcome {
  uint64_t shed = 0;
  uint64_t malformed = 0;
  bool healed = false;
  bool ok = false;
};

int RunServerPhase(ServerOutcome* outcome) {
  core::ResilienceManager& rm = core::ResilienceManager::Global();
  rm.Reset();

  serve::ServerOptions options;
  options.socket_path =
      "/tmp/bench_chaos_srv_" + std::to_string(::getpid()) + ".sock";
  options.catalog.scale_factor = 0.004;
  options.max_connections = 4;
  serve::QueryServer server(options);
  server.Start();
  const double ref_q6 = tpch::ReferenceQ6(server.catalog().lineitem());

  serve::Client client(options.socket_path, "chaos", serve::TenantClass::kInteractive);
  if (!Near(client.Query("q6").result.scalar, ref_q6)) {
    std::fprintf(stderr, "  server: wrong q6 before any chaos\n");
    return kExitServerFailure;
  }

  // Connection flood past the cap: the shed reply must be typed.
  {
    std::vector<serve::Client> holders;
    for (size_t i = 1; i < options.max_connections; ++i) {
      holders.emplace_back(options.socket_path, "holder",
                           serve::TenantClass::kBatch);
    }
    const int fd = RawConnect(options.socket_path);
    if (fd < 0) {
      std::fprintf(stderr, "  server: flood connect failed\n");
      return kExitServerFailure;
    }
    serve::MsgType type;
    std::vector<uint8_t> payload;
    bool got = false;
    try {
      got = serve::ReadFrame(fd, &type, &payload);
    } catch (const std::exception&) {
    }
    ::close(fd);
    if (!got || type != serve::MsgType::kOverloaded) {
      std::fprintf(stderr,
                   "  server: flood got no typed kOverloaded reply\n");
      return kExitServerFailure;
    }
  }

  // The holders hung up, but their sessions finish asynchronously and are
  // reaped at the next accept; wait for the slots to actually free so the
  // garbage connections below are read, not shed at the connection cap.
  while (server.ActiveConnections() > 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Malformed-frame storm: oversized length prefix, truncated header, and
  // seeded random blobs. None may kill the server.
  {
    const int fd = RawConnect(options.socket_path);
    serve::Writer w;
    w.U32(serve::kMaxFrameBytes + 1);
    w.U8(static_cast<uint8_t>(serve::MsgType::kQuery));
    SendRaw(fd, w.bytes());
    ::close(fd);
  }
  {
    const int fd = RawConnect(options.socket_path);
    SendRaw(fd, {0xba, 0xad});
    ::close(fd);
  }
  std::mt19937_64 rng(4242);
  for (int i = 0; i < 16; ++i) {
    const int fd = RawConnect(options.socket_path);
    if (fd < 0) continue;
    std::vector<uint8_t> blob(1 + rng() % 48);
    for (uint8_t& b : blob) b = static_cast<uint8_t>(rng());
    if (blob.size() >= 5 &&
        blob[4] == static_cast<uint8_t>(serve::MsgType::kShutdown)) {
      blob[4] = 0x7f;
    }
    SendRaw(fd, blob);
    ::close(fd);
  }

  // Sticky device loss behind the serving backend: the per-device breaker
  // opens, admission sheds with retry-after, and the half-open probe heals.
  rm.RecordFailure(options.catalog.backend, 0);
  rm.RecordFailure(options.catalog.backend, 0);
  rm.RecordFailure(options.catalog.backend, 0);
  const serve::QueryReply shed = client.Query("q6");
  if (!shed.overloaded || shed.retry_after_ms == 0) {
    std::fprintf(stderr, "  server: open breaker did not shed\n");
    return kExitServerFailure;
  }
  for (int i = 0; i < 64 && !outcome->healed; ++i) {
    const serve::QueryReply reply = client.Query("q6");
    if (!reply.overloaded) {
      outcome->healed = true;
      if (!Near(reply.result.scalar, ref_q6)) {
        std::fprintf(stderr, "  server: wrong q6 after breaker heal\n");
        return kExitServerFailure;
      }
    }
  }
  if (!outcome->healed) {
    std::fprintf(stderr, "  server: breaker probe never admitted\n");
    return kExitServerFailure;
  }

  // The garbage senders hung up without reading replies, so their
  // connection threads may still be draining; poll until the counters
  // catch up.
  serve::StatsReply stats = client.Stats();
  for (int i = 0; i < 500 && stats.malformed < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stats = client.Stats();
  }
  outcome->shed = stats.overloaded;
  outcome->malformed = stats.malformed;
  if (stats.malformed < 2) {
    std::fprintf(stderr, "  server: malformed frames not counted\n");
    return kExitServerFailure;
  }

  client.Shutdown();
  server.WaitForShutdown();
  server.Stop();
  rm.Reset();
  outcome->ok = true;
  std::printf("  server: shed=%llu malformed=%llu healed=yes\n",
              static_cast<unsigned long long>(outcome->shed),
              static_cast<unsigned long long>(outcome->malformed));
  return 0;
}

int Run(const Options& opts) {
  core::RegisterBuiltinBackends();

  tpch::Config config;
  config.scale_factor = opts.scale_factor;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table customer = tpch::GenerateCustomer(config);
  const storage::Table part = tpch::GeneratePart(config);

  plan::TpchHostTables tables;
  tables.lineitem = &lineitem;
  tables.orders = &orders;
  tables.customer = &customer;
  tables.part = &part;

  References ref;
  ref.q1 = tpch::ReferenceQ1(lineitem);
  ref.q3 = tpch::ReferenceQ3(customer, orders, lineitem);
  ref.q4 = tpch::ReferenceQ4(orders, lineitem);
  ref.q6 = tpch::ReferenceQ6(lineitem);
  ref.q14 = tpch::ReferenceQ14(part, lineitem);

  std::printf("bench_chaos_multidevice: sf=%g rows(lineitem)=%zu seeds=%zu "
              "shards=%zu\n\n",
              opts.scale_factor, lineitem.num_rows(), opts.seeds.size(),
              opts.force_shards);

  std::printf("phase A: device-loss chaos sweep (4 devices, one victim per "
              "seed)\n");
  std::vector<ChaosPoint> points;
  int rc = RunChaosSweep(opts, tables, ref, &points);
  if (rc != 0) return rc;

  std::printf("\nphase A gate: zero-fault timeline\n");
  rc = RunZeroFaultGate(opts, tables);
  if (rc != 0) return rc;

  ServerOutcome server_outcome;
  if (!opts.skip_server) {
    std::printf("\nphase B: serving tier under flood + garbage + breaker\n");
    rc = RunServerPhase(&server_outcome);
    if (rc != 0) return rc;
  }

  std::vector<ReadmitPoint> readmit_points;
  size_t checkpoint_reuse_total = 0;
  if (!opts.skip_readmit) {
    std::printf("\nphase C: kill -> degrade -> reset -> re-admit -> "
                "re-converge\n");
    rc = RunReadmissionPhase(opts, tables, ref, &readmit_points,
                             &checkpoint_reuse_total);
    if (rc != 0) return rc;
  }

  std::printf("\nall degraded runs correct, zero-fault timeline identical%s%s"
              ": OK\n",
              opts.skip_server ? "" : ", server hardened",
              opts.skip_readmit ? "" : ", fleet self-healed");

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    out << "{\n  \"scale_factor\": " << opts.scale_factor << ",\n"
        << "  \"force_shards\": " << opts.force_shards << ",\n"
        << "  \"all_ok\": true,\n"
        << "  \"server\": {\"ran\": " << (opts.skip_server ? "false" : "true")
        << ", \"shed\": " << server_outcome.shed
        << ", \"malformed\": " << server_outcome.malformed
        << ", \"breaker_healed\": "
        << (server_outcome.healed ? "true" : "false") << "},\n"
        << "  \"chaos\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const ChaosPoint& p = points[i];
      out << "    {\"seed\": " << p.seed << ", \"query\": \"" << p.query
          << "\", \"victim\": " << p.victim
          << ", \"devices_lost\": " << p.devices_lost
          << ", \"recovery_rounds\": " << p.recovery_rounds
          << ", \"replaced_shards\": " << p.replaced_shards
          << ", \"transfer_retries\": " << p.transfer_retries
          << ", \"sim_ns\": " << p.sim_ns
          << ", \"ok\": " << (p.ok ? "true" : "false") << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"readmission\": {\"ran\": "
        << (opts.skip_readmit ? "false" : "true")
        << ", \"checkpoint_reuse_total\": " << checkpoint_reuse_total
        << ", \"points\": [\n";
    for (size_t i = 0; i < readmit_points.size(); ++i) {
      const ReadmitPoint& p = readmit_points[i];
      out << "    {\"seed\": " << p.seed << ", \"query\": \"" << p.query
          << "\", \"victim\": " << p.victim
          << ", \"readmitted\": " << p.readmitted
          << ", \"checkpoints_reused\": " << p.checkpoints_reused
          << ", \"degraded_ns\": " << p.degraded_ns
          << ", \"recovered_ns\": " << p.recovered_ns
          << ", \"baseline_ns\": " << p.baseline_ns
          << ", \"deterministic\": " << (p.deterministic ? "true" : "false")
          << "}" << (i + 1 < readmit_points.size() ? "," : "") << "\n";
    }
    out << "  ]}\n}\n";
    std::printf("wrote %s\n", opts.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(stderr,
                 "usage: %s [--seeds=1,2,3] [--sf=F] "
                 "[--queries=q1,q3,q4,q6,q14] [--shards=N] [--skip-server] "
                 "[--skip-readmit] [--json=FILE]\n",
                 argv[0]);
    return 64;
  }
  try {
    return Run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_chaos_multidevice: %s\n", e.what());
    return kExitPermanentFailure;
  }
}
