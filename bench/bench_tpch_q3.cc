// R-T6 (extension): TPC-H Q3 end-to-end — the join-heavy query.
//
// Per library the joins fall back to nested loops (Table II); the
// handwritten backend hash-joins. Also reports the handwritten backend
// FORCED onto nested loops, isolating "hashing missing" from "everything
// else": the gap between Handwritten-nlj and Handwritten is purely the
// join algorithm the libraries cannot express.
#include "bench_common.h"
#include "tpch/queries.h"

namespace bench {

void Q3Bench(benchmark::State& state, const std::string& name,
             tpch::JoinStrategy strategy) {
  tpch::Config config;
  config.scale_factor = state.range(0) / 1000.0;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table customer = tpch::GenerateCustomer(config);
  auto backend = core::BackendRegistry::Instance().Create(name);
  const auto dev_li = storage::UploadTable(backend->stream(), lineitem);
  const auto dev_ord = storage::UploadTable(backend->stream(), orders);
  const auto dev_cust = storage::UploadTable(backend->stream(), customer);

  tpch::RunQ3(*backend, dev_cust, dev_ord, dev_li, tpch::Q3Params(),
              strategy);  // warm
  for (auto _ : state) {
    Region region(*backend);
    benchmark::DoNotOptimize(tpch::RunQ3(*backend, dev_cust, dev_ord, dev_li,
                                         tpch::Q3Params(), strategy));
    region.Stop(state);
  }
  state.counters["lineitem_rows"] = static_cast<double>(lineitem.num_rows());
}

void RegisterBenchmarks() {
  for (const auto& name : AllBackendNames()) {
    auto* b = benchmark::RegisterBenchmark(
        ("TpchQ3/" + name).c_str(), [name](benchmark::State& s) {
          Q3Bench(s, name, tpch::JoinStrategy::kAuto);
        });
    b->UseManualTime()->Iterations(1)->Arg(10);  // SF 0.01
  }
  // Ablation: the handwritten kernels forced onto the libraries' join.
  auto* nlj = benchmark::RegisterBenchmark(
      "TpchQ3/Handwritten-nlj", [](benchmark::State& s) {
        Q3Bench(s, backends::kHandwritten, tpch::JoinStrategy::kNestedLoops);
      });
  nlj->UseManualTime()->Iterations(1)->Arg(10);
}

}  // namespace bench

BENCH_MAIN()
