// R-T5: Host<->device transfer overhead vs. payload size.
//
// The interconnect is the tax every library pays identically; the paper's
// framework keeps intermediates on the device precisely to avoid it. This
// bench quantifies the PCIe cost model component: latency-bound for small
// payloads, bandwidth-bound (~12 GB/s) for large ones, vs. on-device copies
// at memory bandwidth (~420 GB/s).
#include "bench_common.h"
#include "gpusim/memory.h"

namespace bench {

enum class Kind { kH2D, kD2H, kD2D };

void TransferBench(benchmark::State& state, Kind kind) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  std::vector<uint8_t> host(bytes, 1);
  gpusim::DeviceArray<uint8_t> a(bytes, stream.device());
  gpusim::DeviceArray<uint8_t> b(bytes, stream.device());

  for (auto _ : state) {
    Region region(stream);
    switch (kind) {
      case Kind::kH2D:
        gpusim::CopyHostToDevice(stream, a.data(), host.data(), bytes);
        break;
      case Kind::kD2H:
        gpusim::CopyDeviceToHost(stream, host.data(), a.data(), bytes);
        break;
      case Kind::kD2D:
        gpusim::CopyDeviceToDevice(stream, b.data(), a.data(), bytes);
        break;
    }
    region.Stop(state);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}

void RegisterBenchmarks() {
  const struct {
    Kind kind;
    const char* name;
  } kinds[] = {{Kind::kH2D, "HostToDevice"},
               {Kind::kD2H, "DeviceToHost"},
               {Kind::kD2D, "DeviceToDevice"}};
  for (const auto& k : kinds) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Transfer/") + k.name).c_str(),
        [kind = k.kind](benchmark::State& s) { TransferBench(s, kind); });
    b->UseManualTime()->Iterations(3);
    for (const int64_t bytes : {1 << 10, 1 << 16, 1 << 22, 1 << 28}) {
      b->Arg(bytes);
    }
  }
}

}  // namespace bench

BENCH_MAIN()
