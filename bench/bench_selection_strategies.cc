// Ablation (DESIGN.md §5.4): compaction strategies for the selection
// operator, all inside one library (thrustsim), plus the handwritten fused
// kernel as the floor.
//
//   pipeline   — transform -> exclusive_scan -> scatter_if (Table II's
//                3-call realization; materializes flags and positions)
//   copy_if    — the library's fused-ish single-call compaction (still
//                flags+scan+scatter internally, but no user intermediates)
//   stencil    — copy_if(stencil) after a separate predicate transform
//   fused      — handwritten one-kernel atomic-ticket selection
#include "bench_common.h"
#include "gpusim/atomic_ops.h"
#include "thrustsim/thrustsim.h"

namespace bench {

void PipelineStrategy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  thrustsim::device_vector<int32_t> col(UniformInts(n, 100));
  thrustsim::device_vector<uint32_t> flags(n);
  thrustsim::device_vector<uint32_t> positions(n);
  thrustsim::device_vector<int32_t> out(n);
  for (auto _ : state) {
    Region region(thrustsim::default_stream());
    thrustsim::transform(col.begin(), col.end(), flags.begin(),
                         [](int32_t v) { return v < 50 ? 1u : 0u; });
    thrustsim::exclusive_scan(flags.begin(), flags.end(), positions.begin());
    thrustsim::scatter_if(thrustsim::make_counting_iterator<int32_t>(0),
                          thrustsim::make_counting_iterator<int32_t>(
                              static_cast<int32_t>(n)),
                          positions.begin(), flags.begin(), out.begin());
    region.Stop(state);
  }
}

void CopyIfStrategy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  thrustsim::device_vector<int32_t> col(UniformInts(n, 100));
  thrustsim::device_vector<int32_t> out(n);
  for (auto _ : state) {
    Region region(thrustsim::default_stream());
    benchmark::DoNotOptimize(thrustsim::copy_if(
        col.begin(), col.end(), out.begin(),
        [](int32_t v) { return v < 50; }));
    region.Stop(state);
  }
}

void StencilStrategy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  thrustsim::device_vector<int32_t> col(UniformInts(n, 100));
  thrustsim::device_vector<uint32_t> stencil(n);
  thrustsim::device_vector<int32_t> out(n);
  for (auto _ : state) {
    Region region(thrustsim::default_stream());
    thrustsim::transform(col.begin(), col.end(), stencil.begin(),
                         [](int32_t v) { return v < 50 ? 1u : 0u; });
    benchmark::DoNotOptimize(thrustsim::copy_if(
        thrustsim::make_counting_iterator<int32_t>(0),
        thrustsim::make_counting_iterator<int32_t>(static_cast<int32_t>(n)),
        stencil.begin(), out.begin(),
        [](uint32_t s) { return s != 0; }));
    region.Stop(state);
  }
}

void FusedStrategy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  auto col = gpusim::ToDevice(stream, UniformInts(n, 100));
  gpusim::DeviceArray<uint32_t> out(n, stream.device());
  for (auto _ : state) {
    Region region(stream);
    gpusim::DeviceArray<uint32_t> counter(1, stream.device());
    gpusim::MemsetDevice(stream, counter.data(), 0, sizeof(uint32_t));
    const int32_t* data = col.data();
    uint32_t* c = counter.data();
    uint32_t* o = out.data();
    gpusim::KernelStats stats;
    stats.name = "fused_select";
    stats.bytes_read = n * sizeof(int32_t);
    stats.bytes_written = n * sizeof(uint32_t);
    gpusim::ParallelFor(stream, n, stats, [=](size_t i) {
      if (data[i] < 50) o[gpusim::AtomicAdd(c, uint32_t{1})] = i;
    });
    uint32_t count = 0;
    gpusim::CopyDeviceToHost(stream, &count, counter.data(),
                             sizeof(uint32_t));
    benchmark::DoNotOptimize(count);
    region.Stop(state);
  }
}

void RegisterBenchmarks() {
  const struct {
    const char* name;
    void (*fn)(benchmark::State&);
  } strategies[] = {
      {"SelectionStrategy/pipeline", PipelineStrategy},
      {"SelectionStrategy/copy_if", CopyIfStrategy},
      {"SelectionStrategy/stencil", StencilStrategy},
      {"SelectionStrategy/fused", FusedStrategy},
  };
  for (const auto& s : strategies) {
    auto* b = benchmark::RegisterBenchmark(s.name, s.fn);
    b->UseManualTime()->Iterations(3);
    for (const int64_t n : {1 << 18, 1 << 22}) b->Arg(n);
  }
}

}  // namespace bench

BENCH_MAIN()
