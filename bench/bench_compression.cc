// Compressed columnar storage: what do the lightweight encodings buy?
//
// For every query in the sweep this binary runs the same workload twice —
// once with raw uploads (storage::UploadTable) and once with automatic
// per-column encoding (storage::UploadTableEncoded) — on a fresh backend
// instance each time, and reports per column the chosen encoding and
// compression ratio, per query the transfer bytes saved and the end-to-end
// simulated speedup, across a scale-factor sweep. Q1 and Q6 go through the
// hand-coded operator chains (tpch/queries.h), whose hot paths evaluate
// predicates in the encoded domain; Q3/Q4/Q14 go through the plan path
// pinned to the same backend.
//
// Not a google-benchmark binary: like bench_pressure it doubles as the CI
// acceptance gate for the storage/encoding layer. The process exits
// non-zero when an encoded-path answer diverges from the raw-path answer
// (exact for integers and counts, 1e-9 relative for re-associated float
// sums) or when a dictionary/RLE-encoded column compresses worse than 1.0x.
//
// Usage:
//   bench_compression [--backend=Handwritten] [--queries=q1,q3,q4,q6,q14]
//                     [--sf=0.01,0.02,0.04] [--json=FILE]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/tpch_plans.h"
#include "storage/encoded_column.h"
#include "storage/encoding.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

struct Options {
  std::string backend = backends::kHandwritten;
  std::vector<std::string> queries = {"q1", "q3", "q4", "q6", "q14"};
  std::vector<double> scale_factors = {0.01, 0.02, 0.04};
  std::string json_path;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--backend=")) {
      opts->backend = v;
    } else if (const char* v = value("--queries=")) {
      opts->queries = SplitCsv(v);
    } else if (const char* v = value("--sf=")) {
      opts->scale_factors.clear();
      for (const auto& s : SplitCsv(v)) {
        opts->scale_factors.push_back(std::stod(s));
      }
    } else if (const char* v = value("--json=")) {
      opts->json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->queries.empty() && !opts->scale_factors.empty();
}

// ---------------------------------------------------------------------------
// Per-column encoding report (and the dictionary/RLE ratio gate)
// ---------------------------------------------------------------------------

struct ColumnReport {
  std::string table;
  std::string column;
  storage::Encoding encoding = storage::Encoding::kNone;
  uint64_t raw_bytes = 0;
  uint64_t encoded_bytes = 0;
  double ratio() const {
    return encoded_bytes == 0 ? 1.0
                              : static_cast<double>(raw_bytes) / encoded_bytes;
  }
};

void ReportTable(const std::string& name, const storage::Table& table,
                 std::vector<ColumnReport>* out) {
  for (const std::string& col : table.column_names()) {
    const storage::Column& c = table.column(col);
    const storage::EncodingChoice choice =
        storage::ChooseEncoding(storage::AnalyzeColumn(c), c.size(), c.type());
    ColumnReport r;
    r.table = name;
    r.column = col;
    r.encoding = choice.encoding;
    r.raw_bytes = c.byte_size();
    r.encoded_bytes = choice.encoding == storage::Encoding::kNone
                          ? r.raw_bytes
                          : choice.encoded_bytes;
    out->push_back(r);
  }
}

// ---------------------------------------------------------------------------
// Raw vs encoded query runs
// ---------------------------------------------------------------------------

struct HostTables {
  storage::Table lineitem, orders, customer, part;
};

/// The result of one query run, whatever its shape.
struct RunOut {
  std::vector<tpch::Q1Row> q1;
  std::vector<tpch::Q3Row> q3;
  std::vector<tpch::Q4Row> q4;
  double scalar = 0;
};

/// Uploads what the query needs (raw or encoded) and runs it end to end on
/// one fresh backend, measuring the whole region on the backend's stream.
RunOut RunOnce(const std::string& query, const std::string& backend_name,
               const HostTables& host, bool encoded, core::Measurement* m) {
  std::unique_ptr<core::Backend> backend =
      core::BackendRegistry::Instance().Create(backend_name);
  gpusim::Stream& stream = backend->stream();
  const auto upload = [&](const storage::Table& t) {
    return encoded ? storage::UploadTableEncoded(stream, t)
                   : storage::UploadTable(stream, t);
  };
  const auto run_plan = [&](plan::QueryPlanBundle bundle) {
    plan::OptimizerOptions options;
    options.pin_backend = backend_name;
    const plan::PhysicalPlan phys = plan::Optimize(bundle.plan, options);
    return plan::RunPinned(phys, *backend);
  };

  core::ScopedMeasurement sm(stream, query + (encoded ? "/enc" : "/raw"));
  RunOut out;
  if (query == "q1") {
    const storage::DeviceTable lineitem = upload(host.lineitem);
    out.q1 = tpch::RunQ1(*backend, lineitem);
  } else if (query == "q6") {
    const storage::DeviceTable lineitem = upload(host.lineitem);
    out.scalar = tpch::RunQ6(*backend, lineitem);
  } else if (query == "q3") {
    const storage::DeviceTable customer = upload(host.customer);
    const storage::DeviceTable orders = upload(host.orders);
    const storage::DeviceTable lineitem = upload(host.lineitem);
    const plan::QueryPlanBundle bundle =
        plan::BuildQ3Plan(customer, orders, lineitem);
    out.q3 = plan::ExtractQ3(bundle, run_plan(bundle), tpch::Q3Params());
  } else if (query == "q4") {
    const storage::DeviceTable orders = upload(host.orders);
    const storage::DeviceTable lineitem = upload(host.lineitem);
    const plan::QueryPlanBundle bundle = plan::BuildQ4Plan(orders, lineitem);
    out.q4 = plan::ExtractQ4(bundle, run_plan(bundle));
  } else if (query == "q14") {
    const storage::DeviceTable part = upload(host.part);
    const storage::DeviceTable lineitem = upload(host.lineitem);
    const plan::QueryPlanBundle bundle = plan::BuildQ14Plan(part, lineitem);
    out.scalar = plan::ExtractQ14(bundle, run_plan(bundle));
  } else {
    throw std::invalid_argument("unknown query: " + query);
  }
  *m = sm.Stop();
  return out;
}

bool Near(double got, double want) {
  return std::abs(got - want) <= std::abs(want) * 1e-9 + 1e-6;
}

/// Encoded-path vs raw-path answers: integers and counts exact, float sums
/// with 1e-9 relative tolerance (the handwritten backend's atomic-ticket
/// aggregation makes row order — hence float association — run-dependent).
bool SameAnswer(const std::string& query, const RunOut& raw, const RunOut& enc,
                std::string* why) {
  if (query == "q1") {
    if (raw.q1.size() != enc.q1.size()) {
      *why = "row count";
      return false;
    }
    for (size_t i = 0; i < raw.q1.size(); ++i) {
      const tpch::Q1Row& a = raw.q1[i];
      const tpch::Q1Row& b = enc.q1[i];
      if (a.returnflag != b.returnflag || a.linestatus != b.linestatus ||
          a.count_order != b.count_order || !Near(b.sum_qty, a.sum_qty) ||
          !Near(b.sum_base_price, a.sum_base_price) ||
          !Near(b.sum_disc_price, a.sum_disc_price) ||
          !Near(b.sum_charge, a.sum_charge) || !Near(b.avg_qty, a.avg_qty) ||
          !Near(b.avg_price, a.avg_price) || !Near(b.avg_disc, a.avg_disc)) {
        *why = "row " + std::to_string(i);
        return false;
      }
    }
    return true;
  }
  if (query == "q3") {
    if (raw.q3.size() != enc.q3.size()) {
      *why = "row count";
      return false;
    }
    for (size_t i = 0; i < raw.q3.size(); ++i) {
      if (raw.q3[i].orderkey != enc.q3[i].orderkey ||
          !Near(enc.q3[i].revenue, raw.q3[i].revenue)) {
        *why = "row " + std::to_string(i);
        return false;
      }
    }
    return true;
  }
  if (query == "q4") {
    if (raw.q4.size() != enc.q4.size()) {
      *why = "row count";
      return false;
    }
    for (size_t i = 0; i < raw.q4.size(); ++i) {
      if (raw.q4[i].orderpriority != enc.q4[i].orderpriority ||
          raw.q4[i].order_count != enc.q4[i].order_count) {
        *why = "row " + std::to_string(i);
        return false;
      }
    }
    return true;
  }
  // q6 / q14: one scalar.
  if (!Near(enc.scalar, raw.scalar)) {
    *why = "scalar " + std::to_string(raw.scalar) + " vs " +
           std::to_string(enc.scalar);
    return false;
  }
  return true;
}

struct QueryPoint {
  double scale_factor = 0;
  std::string query;
  double raw_ms = 0;
  double enc_ms = 0;
  uint64_t raw_h2d = 0;
  uint64_t enc_h2d = 0;
  uint64_t enc_h2d_encoded = 0;
  uint64_t bytes_saved = 0;
  bool match = false;
  double speedup() const { return enc_ms == 0 ? 0 : raw_ms / enc_ms; }
};

int Run(const Options& opts) {
  core::RegisterBuiltinBackends();

  std::printf("bench_compression: backend=%s queries=", opts.backend.c_str());
  for (size_t i = 0; i < opts.queries.size(); ++i) {
    std::printf("%s%s", i ? "," : "", opts.queries[i].c_str());
  }
  std::printf("\n\n");

  bool all_match = true;
  bool ratios_ok = true;
  std::vector<ColumnReport> columns;  // at the largest scale factor
  std::vector<QueryPoint> points;

  for (size_t si = 0; si < opts.scale_factors.size(); ++si) {
    const double sf = opts.scale_factors[si];
    tpch::Config config;
    config.scale_factor = sf;
    HostTables host;
    host.lineitem = tpch::GenerateLineitem(config);
    host.orders = tpch::GenerateOrders(config);
    host.customer = tpch::GenerateCustomer(config);
    host.part = tpch::GeneratePart(config);

    // Per-column encoding selection (the dict/RLE >= 1.0x gate runs at every
    // scale factor; the printed/JSON column table is the largest one).
    std::vector<ColumnReport> cols;
    ReportTable("lineitem", host.lineitem, &cols);
    ReportTable("orders", host.orders, &cols);
    ReportTable("customer", host.customer, &cols);
    ReportTable("part", host.part, &cols);
    for (const ColumnReport& c : cols) {
      if ((c.encoding == storage::Encoding::kDictionary ||
           c.encoding == storage::Encoding::kRle) &&
          c.ratio() < 1.0) {
        ratios_ok = false;
        std::fprintf(stderr,
                     "  RATIO sf=%g %s.%s: %s compresses %.2fx (< 1.0x)\n",
                     sf, c.table.c_str(), c.column.c_str(),
                     storage::EncodingName(c.encoding), c.ratio());
      }
    }
    if (si + 1 == opts.scale_factors.size()) columns = cols;

    std::printf("sf=%g rows(lineitem)=%zu\n", sf, host.lineitem.num_rows());
    std::printf("%6s %12s %12s %9s %12s %12s %12s %7s\n", "query", "raw_ms",
                "enc_ms", "speedup", "raw_h2d", "enc_h2d", "saved", "match");

    for (const std::string& query : opts.queries) {
      core::Measurement raw_m, enc_m;
      const RunOut raw = RunOnce(query, opts.backend, host, false, &raw_m);
      const RunOut enc = RunOnce(query, opts.backend, host, true, &enc_m);
      std::string why;
      const bool match = SameAnswer(query, raw, enc, &why);
      if (!match) {
        all_match = false;
        std::fprintf(stderr, "  DIVERGED sf=%g %s: %s\n", sf, query.c_str(),
                     why.c_str());
      }
      QueryPoint p;
      p.scale_factor = sf;
      p.query = query;
      p.raw_ms = raw_m.simulated_ms();
      p.enc_ms = enc_m.simulated_ms();
      p.raw_h2d = raw_m.bytes_h2d;
      p.enc_h2d = enc_m.bytes_h2d;
      p.enc_h2d_encoded = enc_m.bytes_h2d_encoded;
      p.bytes_saved = enc_m.bytes_saved_vs_raw;
      p.match = match;
      points.push_back(p);
      std::printf("%6s %12.3f %12.3f %8.2fx %12llu %12llu %12llu %7s\n",
                  query.c_str(), p.raw_ms, p.enc_ms, p.speedup(),
                  static_cast<unsigned long long>(p.raw_h2d),
                  static_cast<unsigned long long>(p.enc_h2d),
                  static_cast<unsigned long long>(p.bytes_saved),
                  match ? "ok" : "DIVERGED");
    }
    std::printf("\n");
  }

  std::printf("column encodings (sf=%g)\n",
              opts.scale_factors.back());
  std::printf("%-26s %-12s %12s %12s %8s\n", "column", "encoding",
              "raw_bytes", "enc_bytes", "ratio");
  uint64_t total_raw = 0, total_enc = 0;
  for (const ColumnReport& c : columns) {
    total_raw += c.raw_bytes;
    total_enc += c.encoded_bytes;
    std::printf("%-26s %-12s %12llu %12llu %7.2fx\n",
                (c.table + "." + c.column).c_str(),
                storage::EncodingName(c.encoding),
                static_cast<unsigned long long>(c.raw_bytes),
                static_cast<unsigned long long>(c.encoded_bytes), c.ratio());
  }
  std::printf("%-26s %-12s %12llu %12llu %7.2fx\n", "TOTAL", "-",
              static_cast<unsigned long long>(total_raw),
              static_cast<unsigned long long>(total_enc),
              total_enc == 0 ? 1.0
                             : static_cast<double>(total_raw) / total_enc);

  std::printf("\nencoded answers match raw answers: %s\n",
              all_match ? "OK" : "FAILED");
  std::printf("dictionary/RLE columns compress >= 1.0x: %s\n",
              ratios_ok ? "OK" : "FAILED");

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    out << "{\n  \"backend\": \"" << opts.backend << "\",\n"
        << "  \"all_match\": " << (all_match ? "true" : "false") << ",\n"
        << "  \"ratios_ok\": " << (ratios_ok ? "true" : "false") << ",\n"
        << "  \"columns\": [\n";
    for (size_t i = 0; i < columns.size(); ++i) {
      const ColumnReport& c = columns[i];
      out << "    {\"table\": \"" << c.table << "\", \"column\": \""
          << c.column << "\", \"encoding\": \""
          << storage::EncodingName(c.encoding)
          << "\", \"raw_bytes\": " << c.raw_bytes
          << ", \"encoded_bytes\": " << c.encoded_bytes
          << ", \"ratio\": " << c.ratio() << "}"
          << (i + 1 < columns.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"queries\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const QueryPoint& p = points[i];
      out << "    {\"scale_factor\": " << p.scale_factor << ", \"query\": \""
          << p.query << "\", \"raw_sim_ms\": " << p.raw_ms
          << ", \"enc_sim_ms\": " << p.enc_ms
          << ", \"speedup\": " << p.speedup()
          << ", \"raw_h2d_bytes\": " << p.raw_h2d
          << ", \"enc_h2d_bytes\": " << p.enc_h2d
          << ", \"enc_h2d_encoded_bytes\": " << p.enc_h2d_encoded
          << ", \"bytes_saved_vs_raw\": " << p.bytes_saved
          << ", \"match\": " << (p.match ? "true" : "false") << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", opts.json_path.c_str());
  }

  return all_match && ratios_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(stderr,
                 "usage: %s [--backend=NAME] [--queries=q1,q3,q4,q6,q14] "
                 "[--sf=0.01,0.02,0.04] [--json=FILE]\n",
                 argv[0]);
    return 64;
  }
  try {
    return Run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compression: %s\n", e.what());
    return 3;
  }
}
