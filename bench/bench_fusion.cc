// R-F9: ArrayFire lazy-evaluation fusion ablation.
//
// An element-wise chain of length k over one column is evaluated (a) lazily
// — ArrayFire's JIT fuses the whole chain into ONE kernel and one pass over
// memory — and (b) with eval() forced after every op, which is exactly the
// eager execution model of Thrust/Boost.Compute (k kernels, k passes). The
// same chain is also run through thrustsim for a direct comparison.
// Expected shape: fused time is flat-ish in k (one pass + growing ALU work);
// eager time grows linearly in k.
#include "afsim/afsim.h"
#include "bench_common.h"
#include "thrustsim/thrustsim.h"

namespace bench {

void FusedBench(benchmark::State& state) {
  const size_t n = 1 << 22;
  const int chain = static_cast<int>(state.range(0));
  afsim::array a = afsim::from_vector(UniformDoubles(n, 10.0));
  for (auto _ : state) {
    Region region(afsim::default_stream());
    afsim::array x = a;
    for (int i = 0; i < chain; ++i) x = x * 1.01 + 0.5;
    x.eval();
    region.Stop(state);
  }
  state.counters["chain"] = chain;
}

void ForcedEvalBench(benchmark::State& state) {
  const size_t n = 1 << 22;
  const int chain = static_cast<int>(state.range(0));
  afsim::array a = afsim::from_vector(UniformDoubles(n, 10.0));
  for (auto _ : state) {
    Region region(afsim::default_stream());
    afsim::array x = a;
    for (int i = 0; i < chain; ++i) {
      x = x * 1.01 + 0.5;
      x.eval();  // defeat the JIT: materialize after every op
    }
    region.Stop(state);
  }
  state.counters["chain"] = chain;
}

void ThrustChainBench(benchmark::State& state) {
  const size_t n = 1 << 22;
  const int chain = static_cast<int>(state.range(0));
  thrustsim::device_vector<double> a(UniformDoubles(n, 10.0));
  thrustsim::device_vector<double> tmp(n);
  for (auto _ : state) {
    Region region(thrustsim::default_stream());
    const double* src = a.data();
    for (int i = 0; i < chain; ++i) {
      thrustsim::transform(src, src + n, tmp.data(),
                           [](double v) { return v * 1.01 + 0.5; });
      src = tmp.data();
    }
    region.Stop(state);
  }
  state.counters["chain"] = chain;
}

void RegisterBenchmarks() {
  auto* fused = benchmark::RegisterBenchmark(
      "ElementwiseChain/ArrayFire-fused",
      [](benchmark::State& s) { FusedBench(s); });
  auto* forced = benchmark::RegisterBenchmark(
      "ElementwiseChain/ArrayFire-forced-eval",
      [](benchmark::State& s) { ForcedEvalBench(s); });
  auto* thrust = benchmark::RegisterBenchmark(
      "ElementwiseChain/Thrust-eager",
      [](benchmark::State& s) { ThrustChainBench(s); });
  for (auto* b : {fused, forced, thrust}) {
    b->UseManualTime()->Iterations(2);
    for (const int64_t k : {1, 2, 4, 8, 16}) b->Arg(k);
  }
}

}  // namespace bench

BENCH_MAIN()
