// R-F7: Parallel primitives used for materialization: prefix sum, gather,
// scatter, reduction, product (Table II bottom rows).
#include "bench_common.h"

namespace bench {

enum class Primitive { kPrefixSum, kGather, kScatter, kReduction, kProduct };

const char* PrimitiveName(Primitive p) {
  switch (p) {
    case Primitive::kPrefixSum: return "PrefixSum";
    case Primitive::kGather: return "Gather";
    case Primitive::kScatter: return "Scatter";
    case Primitive::kReduction: return "Reduction";
    case Primitive::kProduct: return "Product";
  }
  return "?";
}

void PrimitiveBench(benchmark::State& state, const std::string& name,
                    Primitive prim) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto backend = core::BackendRegistry::Instance().Create(name);
  const auto ints = Upload(*backend, UniformInts(n, 1000));
  const auto a = Upload(*backend, UniformDoubles(n, 10.0));
  const auto b = Upload(*backend, UniformDoubles(n, 10.0, 77));
  // A random permutation for gather/scatter.
  std::vector<int32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<int32_t>(i);
  std::mt19937 rng(5);
  std::shuffle(perm.begin(), perm.end(), rng);
  const auto idx = Upload(*backend, perm);

  auto run = [&] {
    switch (prim) {
      case Primitive::kPrefixSum:
        benchmark::DoNotOptimize(backend->PrefixSum(ints));
        break;
      case Primitive::kGather:
        benchmark::DoNotOptimize(backend->Gather(a, idx));
        break;
      case Primitive::kScatter:
        benchmark::DoNotOptimize(backend->Scatter(a, idx, n));
        break;
      case Primitive::kReduction:
        benchmark::DoNotOptimize(backend->ReduceColumn(a, core::AggOp::kSum));
        break;
      case Primitive::kProduct:
        benchmark::DoNotOptimize(backend->Product(a, b));
        break;
    }
  };
  run();  // warm program cache

  for (auto _ : state) {
    Region region(*backend);
    run();
    region.Stop(state);
  }
  state.counters["rows"] = static_cast<double>(n);
}

void RegisterBenchmarks() {
  for (const Primitive prim :
       {Primitive::kPrefixSum, Primitive::kGather, Primitive::kScatter,
        Primitive::kReduction, Primitive::kProduct}) {
    for (const auto& name : AllBackendNames()) {
      auto* b = benchmark::RegisterBenchmark(
          (std::string(PrimitiveName(prim)) + "/" + name).c_str(),
          [name, prim](benchmark::State& s) { PrimitiveBench(s, name, prim); });
      b->UseManualTime()->Iterations(3);
      for (const int64_t n : {1 << 18, 1 << 22}) b->Arg(n);
    }
  }
}

}  // namespace bench

BENCH_MAIN()
