// Wall-clock multi-client TPC-H throughput of the simulator.
//
// Unlike the per-query benches (which report *simulated* device time), this
// one measures what the whole stack costs on the host when N concurrent
// clients hammer the device through the QueryScheduler: queries/sec,
// latency percentiles, scaling efficiency vs the 1-client baseline, and the
// thread-pool / device counters behind them. It also re-checks the repo's
// core invariant on every run: a query's per-stream *simulated* time must be
// bit-identical at every client count (the cost model cannot observe host
// scheduling) — the process exits non-zero if that ever breaks.
//
// Not a google-benchmark binary: the unit of work is a whole scheduler run,
// and the sweep needs cross-run state (the 1-client baseline), so it drives
// itself and optionally writes machine-readable JSON for CI archiving.
//
// Usage:
//   bench_throughput [--backend=Handwritten] [--clients=1,2,4,8]
//                    [--queries=q1,q6,q14] [--per-client=6] [--sf=0.01]
//                    [--json=FILE]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/registry.h"
#include "core/scheduler.h"
#include "gpusim/device.h"
#include "storage/device_column.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

struct Options {
  std::string backend = backends::kHandwritten;
  std::vector<unsigned> clients = {1, 2, 4, 8};
  std::vector<std::string> queries = {"q1", "q6", "q14"};
  unsigned per_client = 6;  ///< queries submitted per client slot
  double scale_factor = 0.01;
  std::string json_path;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--backend=")) {
      opts->backend = v;
    } else if (const char* v = value("--clients=")) {
      opts->clients.clear();
      for (const auto& c : SplitCsv(v)) {
        opts->clients.push_back(static_cast<unsigned>(std::stoul(c)));
      }
    } else if (const char* v = value("--queries=")) {
      opts->queries = SplitCsv(v);
    } else if (const char* v = value("--per-client=")) {
      opts->per_client = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = value("--sf=")) {
      opts->scale_factor = std::stod(v);
    } else if (const char* v = value("--json=")) {
      opts->json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->clients.empty() && !opts->queries.empty() &&
         opts->per_client > 0;
}

/// Results of one scheduler run at a fixed client count.
struct SweepPoint {
  unsigned clients = 0;
  size_t queries = 0;
  double wall_seconds = 0;
  double qps = 0;
  double speedup = 0;     ///< qps / 1-client qps
  double efficiency = 0;  ///< speedup / clients
  core::LatencySummary wall_ms;
  uint64_t pool_jobs_dispatched = 0;
  uint64_t pool_jobs_inline = 0;
  uint64_t pool_jobs_overflow = 0;
  uint64_t pool_chunks_worker = 0;
  uint64_t pool_max_live_jobs = 0;
  uint64_t kernels = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t peak_bytes = 0;      ///< device high-water of live+reserved bytes
  uint64_t reserved_bytes = 0;  ///< admission reservations at run end
};

int Run(const Options& opts) {
  core::RegisterBuiltinBackends();

  tpch::Config config;
  config.scale_factor = opts.scale_factor;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table part = tpch::GeneratePart(config);

  // Upload once; device-resident tables are read-only and shared by every
  // client stream.
  gpusim::Device& device = gpusim::Device::Default();
  gpusim::Stream setup(device, gpusim::ApiProfile::Cuda());
  const storage::DeviceTable dev_lineitem = storage::UploadTable(setup, lineitem);
  const storage::DeviceTable dev_part = storage::UploadTable(setup, part);

  const auto make_query = [&](const std::string& kind) -> core::QueryFn {
    if (kind == "q1") {
      return [&](core::Backend& b) { tpch::RunQ1(b, dev_lineitem); };
    }
    if (kind == "q6") {
      return [&](core::Backend& b) { tpch::RunQ6(b, dev_lineitem); };
    }
    if (kind == "q14") {
      return [&](core::Backend& b) { tpch::RunQ14(b, dev_part, dev_lineitem); };
    }
    throw std::invalid_argument("unknown query kind: " + kind);
  };

  std::printf("bench_throughput: backend=%s sf=%g rows(lineitem)=%zu "
              "pool_threads=%u queries/client=%u\n\n",
              opts.backend.c_str(), opts.scale_factor, lineitem.num_rows(),
              device.pool().num_threads(), opts.per_client);
  std::printf("%8s %8s %9s %9s %8s %6s %9s %9s %9s %7s %9s\n", "clients",
              "queries", "wall_s", "qps", "speedup", "eff", "p50_ms",
              "p95_ms", "p99_ms", "jobs", "stolen");

  // Warmup: run each query kind once so the device pool and lazily-created
  // structures are hot before the measured sweep; otherwise the 1-client
  // baseline absorbs all the cold-start cost and inflates the speedups.
  {
    core::SchedulerOptions warm_opts;
    warm_opts.backend_name = opts.backend;
    warm_opts.num_clients = 1;
    core::QueryScheduler warm(warm_opts);
    for (const std::string& kind : opts.queries) {
      warm.Submit("warmup/" + kind, make_query(kind));
    }
    warm.Drain();
  }

  // Golden invariance: simulated ns per query kind, taken from the first
  // sweep point and compared at every later one.
  std::map<std::string, uint64_t> golden_sim_ns;
  bool invariant_ok = true;
  std::vector<SweepPoint> points;

  for (const unsigned clients : opts.clients) {
    const gpusim::ThreadPoolStats pool_before = device.pool().stats();
    const gpusim::CounterSnapshot dev_before = device.Snapshot();

    core::SchedulerOptions sched_opts;
    sched_opts.backend_name = opts.backend;
    sched_opts.num_clients = clients;
    sched_opts.queue_capacity = 2 * static_cast<size_t>(clients);

    core::QueryScheduler scheduler(sched_opts);
    const size_t total = static_cast<size_t>(clients) * opts.per_client;
    for (size_t i = 0; i < total; ++i) {
      const std::string& kind = opts.queries[i % opts.queries.size()];
      scheduler.Submit(kind, make_query(kind));
    }
    scheduler.Drain();

    const core::SchedulerReport report = scheduler.Report();
    const gpusim::ThreadPoolStats pool_after = device.pool().stats();
    const gpusim::CounterSnapshot dev_delta =
        device.Snapshot().Delta(dev_before);

    // OpenCL-style backends JIT-compile programs into per-instance caches,
    // so their first queries legitimately carry compile time that later ones
    // do not; the bit-identical golden check only applies to runs with no
    // compilation (the scheduler_test covers the general invariant).
    const bool jit_warmup = dev_delta.programs_compiled > 0;
    for (const core::QueryRecord& q : scheduler.Records()) {
      if (!q.ok) {
        std::fprintf(stderr, "query %s failed: %s\n", q.label.c_str(),
                     q.error.c_str());
        return 2;
      }
      if (jit_warmup) continue;
      const auto [it, inserted] =
          golden_sim_ns.emplace(q.label, q.simulated_ns);
      if (!inserted && it->second != q.simulated_ns) {
        std::fprintf(stderr,
                     "SIMULATED-TIME INVARIANT VIOLATED: %s took %llu ns at "
                     "%u clients, expected %llu\n",
                     q.label.c_str(),
                     static_cast<unsigned long long>(q.simulated_ns), clients,
                     static_cast<unsigned long long>(it->second));
        invariant_ok = false;
      }
    }

    SweepPoint p;
    p.clients = clients;
    p.queries = report.completed;
    p.wall_seconds = report.wall_seconds;
    p.qps = report.queries_per_sec;
    p.speedup = points.empty() || points.front().qps == 0
                    ? 1.0
                    : p.qps / points.front().qps;
    p.efficiency = p.speedup / clients;
    p.wall_ms = report.wall_ms;
    p.pool_jobs_dispatched =
        pool_after.jobs_dispatched - pool_before.jobs_dispatched;
    p.pool_jobs_inline = pool_after.jobs_inline - pool_before.jobs_inline;
    p.pool_jobs_overflow = pool_after.jobs_overflow - pool_before.jobs_overflow;
    p.pool_chunks_worker = pool_after.chunks_worker - pool_before.chunks_worker;
    p.pool_max_live_jobs = pool_after.max_live_jobs;
    p.kernels = dev_delta.kernels_launched;
    p.pool_hits = dev_delta.pool_hits;
    p.pool_misses = dev_delta.pool_misses;
    p.peak_bytes = report.device_peak_bytes;
    p.reserved_bytes = report.device_reserved_bytes;
    points.push_back(p);

    std::printf("%8u %8zu %9.3f %9.1f %7.2fx %5.2f %9.3f %9.3f %9.3f %7llu "
                "%9llu\n",
                p.clients, p.queries, p.wall_seconds, p.qps, p.speedup,
                p.efficiency, p.wall_ms.p50, p.wall_ms.p95, p.wall_ms.p99,
                static_cast<unsigned long long>(p.pool_jobs_dispatched),
                static_cast<unsigned long long>(p.pool_chunks_worker));
  }

  std::printf("\nsimulated-time invariant (per-query ns identical at every "
              "client count): %s\n",
              invariant_ok ? "OK" : "VIOLATED");

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    out << "{\n  \"backend\": \"" << opts.backend << "\",\n"
        << "  \"scale_factor\": " << opts.scale_factor << ",\n"
        << "  \"pool_threads\": " << device.pool().num_threads() << ",\n"
        << "  \"sim_ns_invariant_ok\": " << (invariant_ok ? "true" : "false")
        << ",\n  \"sweep\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      out << "    {\"clients\": " << p.clients << ", \"queries\": "
          << p.queries << ", \"wall_seconds\": " << p.wall_seconds
          << ", \"qps\": " << p.qps << ", \"speedup\": " << p.speedup
          << ", \"efficiency\": " << p.efficiency
          << ", \"p50_ms\": " << p.wall_ms.p50
          << ", \"p95_ms\": " << p.wall_ms.p95
          << ", \"p99_ms\": " << p.wall_ms.p99
          << ", \"pool_jobs_dispatched\": " << p.pool_jobs_dispatched
          << ", \"pool_jobs_inline\": " << p.pool_jobs_inline
          << ", \"pool_jobs_overflow\": " << p.pool_jobs_overflow
          << ", \"pool_chunks_worker\": " << p.pool_chunks_worker
          << ", \"pool_max_live_jobs\": " << p.pool_max_live_jobs
          << ", \"kernels\": " << p.kernels
          << ", \"pool_hits\": " << p.pool_hits
          << ", \"pool_misses\": " << p.pool_misses
          << ", \"peak_bytes\": " << p.peak_bytes
          << ", \"reserved_bytes\": " << p.reserved_bytes << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", opts.json_path.c_str());
  }

  return invariant_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(stderr,
                 "usage: %s [--backend=NAME] [--clients=1,2,4,8] "
                 "[--queries=q1,q6,q14] [--per-client=N] [--sf=F] "
                 "[--json=FILE]\n",
                 argv[0]);
    return 64;
  }
  try {
    return Run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_throughput: %s\n", e.what());
    return 3;
  }
}
