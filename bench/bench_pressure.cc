// Graceful degradation under device-memory pressure.
//
// Sweeps the simulated device capacity from 100% down to 10% of the TPC-H
// working set (the largest single-query footprint) crossed with client
// counts, and drives all five plan queries through the QueryScheduler with
// memory admission (core::MemoryGovernor) and spill-to-host partitioned
// execution (plan/partition.h). At every point it reports completion rate,
// partition counts, spill traffic, admission-queue behaviour, and latency
// percentiles — and verifies every query result against the host reference.
// The process exits non-zero on any permanent failure or wrong answer: the
// whole point of the governor is that shrinking memory degrades throughput,
// never correctness.
//
// Not a google-benchmark binary: the unit of work is a whole scheduler run
// at a given (capacity, clients) point, and the binary doubles as the CI
// acceptance gate for the memory-governance path.
//
// Usage:
//   bench_pressure [--backend=Handwritten] [--queries=q1,q3,q4,q6,q14]
//                  [--capacity=1.0,0.75,0.5,0.25,0.10] [--clients=1,4]
//                  [--per-client=2] [--sf=0.01] [--json=FILE]
//                  [--encoding=on|off]
//
// --encoding=on uploads tables (and spill slices) compressed and admits
// queries at their encoded footprint. The capacity baseline (working set)
// stays raw-sized in both modes so sweep points are comparable: at a fixed
// capacity fraction, encoding should show fewer partitions / higher
// immediate-admission rates than off.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/governor.h"
#include "core/registry.h"
#include "core/resilience.h"
#include "core/scheduler.h"
#include "gpusim/device.h"
#include "plan/partition.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

struct Options {
  std::string backend = backends::kHandwritten;
  std::vector<std::string> queries = {"q1", "q3", "q4", "q6", "q14"};
  std::vector<double> capacity_fracs = {1.0, 0.75, 0.5, 0.25, 0.10};
  std::vector<unsigned> clients = {1, 4};
  unsigned per_client = 2;
  double scale_factor = 0.01;
  std::string json_path;
  bool use_encoding = false;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--backend=")) {
      opts->backend = v;
    } else if (const char* v = value("--queries=")) {
      opts->queries = SplitCsv(v);
    } else if (const char* v = value("--capacity=")) {
      opts->capacity_fracs.clear();
      for (const auto& c : SplitCsv(v)) {
        opts->capacity_fracs.push_back(std::stod(c));
      }
    } else if (const char* v = value("--clients=")) {
      opts->clients.clear();
      for (const auto& c : SplitCsv(v)) {
        opts->clients.push_back(static_cast<unsigned>(std::stoul(c)));
      }
    } else if (const char* v = value("--per-client=")) {
      opts->per_client = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = value("--sf=")) {
      opts->scale_factor = std::stod(v);
    } else if (const char* v = value("--json=")) {
      opts->json_path = v;
    } else if (const char* v = value("--encoding=")) {
      const std::string mode = v;
      if (mode != "on" && mode != "off") {
        std::fprintf(stderr, "--encoding must be on or off\n");
        return false;
      }
      opts->use_encoding = mode == "on";
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->queries.empty() && !opts->capacity_fracs.empty() &&
         !opts->clients.empty() && opts->per_client > 0;
}

/// Host-reference answers, computed once and reused at every sweep point.
struct References {
  std::vector<tpch::Q1Row> q1;
  std::vector<tpch::Q3Row> q3;
  std::vector<tpch::Q4Row> q4;
  double q6 = 0;
  double q14 = 0;
};

bool Near(double got, double want) {
  return std::abs(got - want) <= std::abs(want) * 1e-9 + 1e-6;
}

/// Verifies a governed result against the host reference. Float sums are
/// re-associated by partition merging, so they compare with tolerance;
/// integer keys and counts must match exactly.
bool Verify(plan::TpchQuery q, const plan::TpchQueryResult& got,
            const References& ref, std::string* why) {
  switch (q) {
    case plan::TpchQuery::kQ1: {
      if (got.q1.size() != ref.q1.size()) {
        *why = "q1 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q1.size(); ++i) {
        const tpch::Q1Row& g = got.q1[i];
        const tpch::Q1Row& w = ref.q1[i];
        if (g.returnflag != w.returnflag || g.linestatus != w.linestatus ||
            g.count_order != w.count_order || !Near(g.sum_qty, w.sum_qty) ||
            !Near(g.sum_base_price, w.sum_base_price) ||
            !Near(g.sum_disc_price, w.sum_disc_price) ||
            !Near(g.sum_charge, w.sum_charge) ||
            !Near(g.avg_qty, w.avg_qty) || !Near(g.avg_price, w.avg_price) ||
            !Near(g.avg_disc, w.avg_disc)) {
          *why = "q1 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ3: {
      if (got.q3.size() != ref.q3.size()) {
        *why = "q3 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q3.size(); ++i) {
        if (got.q3[i].orderkey != ref.q3[i].orderkey ||
            !Near(got.q3[i].revenue, ref.q3[i].revenue)) {
          *why = "q3 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ4: {
      if (got.q4.size() != ref.q4.size()) {
        *why = "q4 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q4.size(); ++i) {
        if (got.q4[i].orderpriority != ref.q4[i].orderpriority ||
            got.q4[i].order_count != ref.q4[i].order_count) {
          *why = "q4 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ6:
      if (!Near(got.scalar, ref.q6)) {
        *why = "q6 scalar mismatch";
        return false;
      }
      return true;
    case plan::TpchQuery::kQ14:
      if (!Near(got.scalar, ref.q14)) {
        *why = "q14 scalar mismatch";
        return false;
      }
      return true;
  }
  *why = "unknown query";
  return false;
}

/// Results of one (capacity, clients) scheduler run.
struct SweepPoint {
  double capacity_frac = 0;
  uint64_t capacity_bytes = 0;
  unsigned clients = 0;
  size_t completed = 0;
  size_t failed = 0;
  size_t rejected = 0;
  size_t wrong = 0;             ///< verified results that did not match
  size_t partitioned = 0;       ///< queries that ran with K > 1
  size_t max_partitions = 0;    ///< largest K any query used
  size_t oom_fallbacks = 0;
  uint64_t spill_h2d = 0;
  uint64_t spill_d2h = 0;
  double wall_p95_ms = 0;
  double sim_p95_ms = 0;
  double wait_p95_ms = 0;
  uint64_t admitted_immediate = 0;
  uint64_t admitted_queued = 0;
  uint64_t peak_bytes = 0;
};

int Run(const Options& opts) {
  core::RegisterBuiltinBackends();

  tpch::Config config;
  config.scale_factor = opts.scale_factor;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table customer = tpch::GenerateCustomer(config);
  const storage::Table part = tpch::GeneratePart(config);

  plan::TpchHostTables tables;
  tables.lineitem = &lineitem;
  tables.orders = &orders;
  tables.customer = &customer;
  tables.part = &part;

  std::vector<plan::TpchQuery> queries;
  for (const std::string& name : opts.queries) {
    queries.push_back(plan::ParseTpchQuery(name));
  }

  References ref;
  ref.q1 = tpch::ReferenceQ1(lineitem);
  ref.q3 = tpch::ReferenceQ3(customer, orders, lineitem);
  ref.q4 = tpch::ReferenceQ4(orders, lineitem);
  ref.q6 = tpch::ReferenceQ6(lineitem);
  ref.q14 = tpch::ReferenceQ14(part, lineitem);

  // The pressure baseline: the largest single-query footprint, always
  // RAW-sized — capacity fractions must mean the same bytes whether encoding
  // is on or off, or the sweep points would not be comparable.
  uint64_t working_set = 0;
  for (const plan::TpchQuery q : queries) {
    working_set = std::max(
        working_set, plan::EstimateQueryFootprint(q, tables, opts.backend));
  }

  gpusim::Device& device = gpusim::Device::Default();
  const size_t original_capacity = device.memory_capacity();

  std::printf("bench_pressure: backend=%s sf=%g rows(lineitem)=%zu "
              "working_set=%.1f MiB queries/client=%u encoding=%s\n\n",
              opts.backend.c_str(), opts.scale_factor, lineitem.num_rows(),
              static_cast<double>(working_set) / (1024.0 * 1024.0),
              opts.per_client, opts.use_encoding ? "on" : "off");
  std::printf("%9s %8s %8s %7s %7s %6s %7s %7s %10s %10s %9s %9s\n",
              "capacity", "clients", "queries", "failed", "reject", "wrong",
              "parts", "maxK", "spill_h2d", "spill_d2h", "p95_ms",
              "wait95ms");

  std::vector<SweepPoint> points;
  bool all_ok = true;

  for (const double frac : opts.capacity_fracs) {
    for (const unsigned clients : opts.clients) {
      const uint64_t capacity = static_cast<uint64_t>(
          frac * static_cast<double>(working_set));
      device.TrimPool();  // prior points' pooled blocks don't count here
      device.set_memory_capacity(capacity);

      core::GovernorOptions gov_opts;
      gov_opts.device = &device;
      core::MemoryGovernor governor(gov_opts);

      core::ResilienceManager resilience;  // breaker state per sweep point
      core::SchedulerOptions sched_opts;
      sched_opts.backend_name = opts.backend;
      sched_opts.num_clients = clients;
      sched_opts.queue_capacity = 2 * static_cast<size_t>(clients);
      sched_opts.governor = &governor;
      sched_opts.resilience = &resilience;

      const size_t total = static_cast<size_t>(clients) * opts.per_client *
                           queries.size();
      std::vector<plan::TpchQueryResult> results(total);
      std::vector<plan::GovernedRunStats> stats(total);
      std::vector<plan::TpchQuery> submitted(total);
      {
        core::QueryScheduler scheduler(sched_opts);
        for (size_t i = 0; i < total; ++i) {
          const plan::TpchQuery q = queries[i % queries.size()];
          submitted[i] = q;
          plan::GovernedQueryOptions gq;
          gq.use_encoding = opts.use_encoding;
          scheduler.Submit(
              plan::TpchQueryName(q),
              plan::MakeGovernedQuery(q, tables, gq, &results[i], &stats[i]),
              plan::EstimateQueryFootprint(q, tables, opts.backend, 1,
                                           opts.use_encoding),
              nullptr);
        }
        scheduler.Drain();

        const core::SchedulerReport report = scheduler.Report();
        SweepPoint p;
        p.capacity_frac = frac;
        p.capacity_bytes = capacity;
        p.clients = clients;
        p.completed = report.completed;
        p.failed = report.failed;
        p.wall_p95_ms = report.wall_ms.p95;
        p.sim_p95_ms = report.simulated_ms.p95;
        p.wait_p95_ms = report.governor.wait_p95_ms;
        p.admitted_immediate = report.governor.granted;
        p.admitted_queued = report.governor.queued;
        p.peak_bytes = report.device_peak_bytes;

        const std::vector<core::QueryRecord> records = scheduler.Records();
        for (size_t i = 0; i < records.size(); ++i) {
          const core::QueryRecord& r = records[i];
          if (r.admission_rejected) ++p.rejected;
          if (!r.ok) {
            std::fprintf(stderr,
                         "  FAIL cap=%.0f%% clients=%u %s (id %llu): %s\n",
                         frac * 100, clients, r.label.c_str(),
                         static_cast<unsigned long long>(r.id),
                         r.error.c_str());
            continue;
          }
          std::string why;
          if (!Verify(submitted[r.id], results[r.id], ref, &why)) {
            ++p.wrong;
            std::fprintf(stderr, "  WRONG cap=%.0f%% clients=%u %s: %s\n",
                         frac * 100, clients, r.label.c_str(), why.c_str());
          }
        }
        for (const plan::GovernedRunStats& s : stats) {
          if (s.partitions > 1) ++p.partitioned;
          p.max_partitions = std::max(p.max_partitions, s.partitions);
          p.oom_fallbacks += s.oom_fallbacks;
          p.spill_h2d += s.spill_h2d_bytes;
          p.spill_d2h += s.spill_d2h_bytes;
        }

        if (p.failed > 0 || p.wrong > 0 || p.completed != total) {
          all_ok = false;
        }
        points.push_back(p);
        std::printf("%8.0f%% %8u %8zu %7zu %7zu %6zu %7zu %7zu %10llu "
                    "%10llu %9.3f %9.3f\n",
                    frac * 100, clients, p.completed, p.failed, p.rejected,
                    p.wrong, p.partitioned, p.max_partitions,
                    static_cast<unsigned long long>(p.spill_h2d),
                    static_cast<unsigned long long>(p.spill_d2h),
                    p.wall_p95_ms, p.wait_p95_ms);
      }
    }
  }

  device.set_memory_capacity(original_capacity);
  device.TrimPool();

  std::printf("\nall queries completed correctly at every capacity: %s\n",
              all_ok ? "OK" : "FAILED");

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    uint64_t peak = 0;
    for (const SweepPoint& p : points) peak = std::max(peak, p.peak_bytes);
    out << "{\n  \"backend\": \"" << opts.backend << "\",\n"
        << "  \"devices\": 1,\n"
        << "  \"per_device_peak_bytes\": [" << peak << "],\n"
        << "  \"scale_factor\": " << opts.scale_factor << ",\n"
        << "  \"encoding\": " << (opts.use_encoding ? "true" : "false")
        << ",\n"
        << "  \"working_set_bytes\": " << working_set << ",\n"
        << "  \"all_ok\": " << (all_ok ? "true" : "false") << ",\n"
        << "  \"sweep\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      out << "    {\"capacity_frac\": " << p.capacity_frac
          << ", \"capacity_bytes\": " << p.capacity_bytes
          << ", \"clients\": " << p.clients
          << ", \"completed\": " << p.completed
          << ", \"failed\": " << p.failed
          << ", \"rejected\": " << p.rejected
          << ", \"wrong\": " << p.wrong
          << ", \"partitioned_queries\": " << p.partitioned
          << ", \"max_partitions\": " << p.max_partitions
          << ", \"oom_fallbacks\": " << p.oom_fallbacks
          << ", \"spill_h2d_bytes\": " << p.spill_h2d
          << ", \"spill_d2h_bytes\": " << p.spill_d2h
          << ", \"wall_p95_ms\": " << p.wall_p95_ms
          << ", \"sim_p95_ms\": " << p.sim_p95_ms
          << ", \"admission_wait_p95_ms\": " << p.wait_p95_ms
          << ", \"admitted_immediate\": " << p.admitted_immediate
          << ", \"admitted_queued\": " << p.admitted_queued
          << ", \"peak_bytes\": " << p.peak_bytes << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", opts.json_path.c_str());
  }

  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(stderr,
                 "usage: %s [--backend=NAME] [--queries=q1,q3,q4,q6,q14] "
                 "[--capacity=1.0,0.5,0.25] [--clients=1,4] "
                 "[--per-client=N] [--sf=F] [--json=FILE] "
                 "[--encoding=on|off]\n",
                 argv[0]);
    return 64;
  }
  try {
    return Run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_pressure: %s\n", e.what());
    return 3;
  }
}
