// R-F6: PK-FK equi-join: the libraries' nested-loops realizations vs. the
// handwritten hash join.
//
// Table II: no library supports hash (or merge) joins. Thrust/Boost realize
// the join as for_each_n with an O(|R|*|S|) scan; ArrayFire has no direct
// realization at all and pays one where() round-trip per build row. The
// handwritten hash join is O(|R|+|S|). Expected shape: hash join wins by
// orders of magnitude and the gap widens with |R|.
#include "bench_common.h"

namespace bench {

void JoinBench(benchmark::State& state, const std::string& name,
               bool use_hash) {
  const size_t n_build = static_cast<size_t>(state.range(0));
  const size_t n_probe = 4 * n_build;
  auto backend = core::BackendRegistry::Instance().Create(name);

  // Unique build keys 0..n-1 shuffled; probe keys drawn from 2x the domain
  // (so ~50% of probes match).
  std::vector<int32_t> build(n_build);
  for (size_t i = 0; i < n_build; ++i) build[i] = static_cast<int32_t>(i);
  std::mt19937 rng(7);
  std::shuffle(build.begin(), build.end(), rng);
  const auto probe = UniformInts(n_probe, static_cast<int32_t>(2 * n_build));

  const auto left = Upload(*backend, build);
  const auto right = Upload(*backend, probe);

  // Warm the program cache on a tiny join so Boost.Compute's one-off kernel
  // compilation does not masquerade as join cost.
  {
    std::vector<int32_t> tiny{1, 2, 3, 4};
    const auto tl = Upload(*backend, tiny);
    const auto tr = Upload(*backend, tiny);
    if (use_hash) {
      backend->HashJoin(tl, tr);
    } else {
      backend->NestedLoopsJoin(tl, tr);
    }
  }

  size_t matches = 0;
  for (auto _ : state) {
    Region region(*backend);
    const auto join = use_hash ? backend->HashJoin(left, right)
                               : backend->NestedLoopsJoin(left, right);
    region.Stop(state);
    matches = join.count;
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["build_rows"] = static_cast<double>(n_build);
}

void RegisterBenchmarks() {
  for (const auto& name : AllBackendNames()) {
    auto* b = benchmark::RegisterBenchmark(
        ("NestedLoopsJoin/" + name).c_str(),
        [name](benchmark::State& s) { JoinBench(s, name, false); });
    b->UseManualTime()->Iterations(1);
    for (const int64_t n : {1 << 10, 1 << 12, 1 << 14}) b->Arg(n);
  }
  auto* h = benchmark::RegisterBenchmark(
      "HashJoin/Handwritten", [](benchmark::State& s) {
        JoinBench(s, backends::kHandwritten, true);
      });
  h->UseManualTime()->Iterations(1);
  for (const int64_t n : {1 << 10, 1 << 12, 1 << 14, 1 << 18, 1 << 20}) {
    h->Arg(n);
  }
}

}  // namespace bench

BENCH_MAIN()
