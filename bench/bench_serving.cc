// Serving-tier acceptance benchmark: resident server, plan cache, QoS.
//
// Simulates thousands of client sessions against the resident query server
// (serve/server.h) over its UNIX-socket protocol. Three tenant classes
// (interactive / batch / best-effort) issue a mixed q1/q3/q4/q6/q14 workload
// in two phases:
//
//   steady  — `--sessions` short sessions (default 1200) spread round-robin
//             across the classes, each running `--per-session` queries.
//   flood   — `--flood-conns` batch connections hammer the server
//             continuously while a single interactive prober runs
//             `--probe-queries` latency probes through the same queue.
//
// Every reply — both phases, all classes — is verified against the host
// reference recomputed from the dataset description the server returns in
// its Hello reply. The binary is the CI acceptance gate for the serving
// tier and exits non-zero when any of these fail:
//
//   * any wrong / failed / admission-rejected answer,
//   * plan-cache hit rate below --min-hit-rate (default 0.90) or zero hits,
//   * interactive p99 exceeding batch p99 (wall or queue wait) during the
//     batch flood — the per-tenant fair share must keep the interactive
//     class's tail bounded while batch saturates the queue.
//
// By default the benchmark hosts the server in-process on a private socket.
// --connect=PATH drives an externally launched gpudb_server instead (the CI
// smoke job does this); dataset parameters then come from the handshake.
//
// Usage:
// --probe-malformed additionally throws a burst of garbage frames
// (truncated headers, oversized length prefixes, random blobs) at the
// socket before the steady phase and gates on the server answering them
// with typed errors, counting them, and staying fully functional.
//
// Usage:
//   bench_serving [--sessions=1200] [--per-session=2] [--drivers=16]
//                 [--queries=q1,q3,q4,q6,q14] [--flood-conns=6]
//                 [--probe-queries=120] [--min-hit-rate=0.9]
//                 [--sf=0.01] [--seed=42] [--backend=Handwritten]
//                 [--clients=4] [--no-encoding] [--connect=SOCKET]
//                 [--probe-malformed] [--json=FILE]
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/registry.h"
#include "plan/partition.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/tenant.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

struct Options {
  size_t sessions = 1200;
  unsigned per_session = 2;
  unsigned drivers = 16;
  std::vector<std::string> queries = {"q1", "q3", "q4", "q6", "q14"};
  unsigned flood_conns = 6;
  unsigned probe_queries = 120;
  double min_hit_rate = 0.9;
  double scale_factor = 0.01;
  uint64_t seed = 42;
  std::string backend = "Handwritten";
  unsigned server_clients = 4;
  bool use_encoding = true;
  std::string connect_path;  ///< non-empty: drive an external server
  bool probe_malformed = false;  ///< garbage-frame probe before steady phase
  std::string json_path;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--sessions=")) {
      opts->sessions = static_cast<size_t>(std::stoul(v));
    } else if (const char* v = value("--per-session=")) {
      opts->per_session = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = value("--drivers=")) {
      opts->drivers = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = value("--queries=")) {
      opts->queries = SplitCsv(v);
    } else if (const char* v = value("--flood-conns=")) {
      opts->flood_conns = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = value("--probe-queries=")) {
      opts->probe_queries = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = value("--min-hit-rate=")) {
      opts->min_hit_rate = std::stod(v);
    } else if (const char* v = value("--sf=")) {
      opts->scale_factor = std::stod(v);
    } else if (const char* v = value("--seed=")) {
      opts->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--backend=")) {
      opts->backend = v;
    } else if (const char* v = value("--clients=")) {
      opts->server_clients = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--no-encoding") {
      opts->use_encoding = false;
    } else if (const char* v = value("--connect=")) {
      opts->connect_path = v;
    } else if (arg == "--probe-malformed") {
      opts->probe_malformed = true;
    } else if (const char* v = value("--json=")) {
      opts->json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->queries.empty() && opts->sessions > 0 &&
         opts->per_session > 0 && opts->drivers > 0;
}

/// Host-reference answers at the served (scale factor, seed).
struct References {
  std::vector<tpch::Q1Row> q1;
  std::vector<tpch::Q3Row> q3;
  std::vector<tpch::Q4Row> q4;
  double q6 = 0;
  double q14 = 0;
};

References ComputeReferences(double scale_factor, uint64_t seed) {
  tpch::Config config;
  config.scale_factor = scale_factor;
  config.seed = seed;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table customer = tpch::GenerateCustomer(config);
  const storage::Table part = tpch::GeneratePart(config);
  References ref;
  ref.q1 = tpch::ReferenceQ1(lineitem);
  ref.q3 = tpch::ReferenceQ3(customer, orders, lineitem);
  ref.q4 = tpch::ReferenceQ4(orders, lineitem);
  ref.q6 = tpch::ReferenceQ6(lineitem);
  ref.q14 = tpch::ReferenceQ14(part, lineitem);
  return ref;
}

bool Near(double got, double want) {
  return std::abs(got - want) <= std::abs(want) * 1e-9 + 1e-6;
}

/// Float sums may be re-associated by the device plan, so they compare with
/// tolerance; keys and counts must match exactly.
bool Verify(plan::TpchQuery q, const plan::TpchQueryResult& got,
            const References& ref, std::string* why) {
  switch (q) {
    case plan::TpchQuery::kQ1: {
      if (got.q1.size() != ref.q1.size()) {
        *why = "q1 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q1.size(); ++i) {
        const tpch::Q1Row& g = got.q1[i];
        const tpch::Q1Row& w = ref.q1[i];
        if (g.returnflag != w.returnflag || g.linestatus != w.linestatus ||
            g.count_order != w.count_order || !Near(g.sum_qty, w.sum_qty) ||
            !Near(g.sum_base_price, w.sum_base_price) ||
            !Near(g.sum_disc_price, w.sum_disc_price) ||
            !Near(g.sum_charge, w.sum_charge) ||
            !Near(g.avg_qty, w.avg_qty) || !Near(g.avg_price, w.avg_price) ||
            !Near(g.avg_disc, w.avg_disc)) {
          *why = "q1 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ3: {
      if (got.q3.size() != ref.q3.size()) {
        *why = "q3 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q3.size(); ++i) {
        if (got.q3[i].orderkey != ref.q3[i].orderkey ||
            !Near(got.q3[i].revenue, ref.q3[i].revenue)) {
          *why = "q3 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ4: {
      if (got.q4.size() != ref.q4.size()) {
        *why = "q4 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q4.size(); ++i) {
        if (got.q4[i].orderpriority != ref.q4[i].orderpriority ||
            got.q4[i].order_count != ref.q4[i].order_count) {
          *why = "q4 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ6:
      if (!Near(got.scalar, ref.q6)) {
        *why = "q6 scalar mismatch";
        return false;
      }
      return true;
    case plan::TpchQuery::kQ14:
      if (!Near(got.scalar, ref.q14)) {
        *why = "q14 scalar mismatch";
        return false;
      }
      return true;
  }
  *why = "unknown query";
  return false;
}

/// Latency/outcome samples one driver thread collected; merged at the end.
struct Samples {
  std::vector<double> wall_ms;
  std::vector<double> wait_ms;
  std::vector<double> total_ms;  ///< queue wait + execution, end to end
  size_t queries = 0;
  size_t hits = 0;
  size_t wrong = 0;
  size_t rejected = 0;
  size_t failed = 0;
  size_t aged = 0;
  std::string first_error;

  void Absorb(const Samples& other) {
    wall_ms.insert(wall_ms.end(), other.wall_ms.begin(), other.wall_ms.end());
    wait_ms.insert(wait_ms.end(), other.wait_ms.begin(), other.wait_ms.end());
    total_ms.insert(total_ms.end(), other.total_ms.begin(),
                    other.total_ms.end());
    queries += other.queries;
    hits += other.hits;
    wrong += other.wrong;
    rejected += other.rejected;
    failed += other.failed;
    aged += other.aged;
    if (first_error.empty()) first_error = other.first_error;
  }

  void Record(const std::string& query_name, const serve::QueryReply& reply,
              const References& ref) {
    ++queries;
    if (reply.rejected) {
      ++rejected;
      if (first_error.empty()) first_error = query_name + " rejected";
      return;
    }
    if (reply.cache_hit) ++hits;
    if (reply.aged) ++aged;
    wall_ms.push_back(reply.wall_ms);
    wait_ms.push_back(reply.queue_wait_ms);
    total_ms.push_back(reply.queue_wait_ms + reply.wall_ms);
    std::string why;
    if (!Verify(reply.query, reply.result, ref, &why)) {
      ++wrong;
      if (first_error.empty()) first_error = query_name + ": " + why;
    }
  }
};

constexpr serve::TenantClass kClasses[] = {serve::TenantClass::kInteractive,
                                           serve::TenantClass::kBatch,
                                           serve::TenantClass::kBestEffort};
constexpr size_t kNumClasses = 3;

int RawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendRaw(int fd, const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: the server may hang up mid-blob; that is the scenario
    // under test, not a reason to die of SIGPIPE.
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

/// The adversarial warm-up: garbage frames that the server must answer with
/// typed errors (or hang up on) without crashing or losing the socket.
/// Returns false when the server misbehaves.
bool RunMalformedProbe(const std::string& socket_path) {
  // Oversized length prefix: must be rejected before any allocation and
  // answered with a typed kError.
  {
    const int fd = RawConnect(socket_path);
    if (fd < 0) {
      std::fprintf(stderr, "malformed probe: connect failed\n");
      return false;
    }
    serve::Writer w;
    w.U32(serve::kMaxFrameBytes + 1);
    w.U8(static_cast<uint8_t>(serve::MsgType::kQuery));
    SendRaw(fd, w.bytes());
    serve::MsgType type;
    std::vector<uint8_t> payload;
    bool got = false;
    try {
      got = serve::ReadFrame(fd, &type, &payload);
    } catch (const std::exception&) {
    }
    ::close(fd);
    if (!got || type != serve::MsgType::kError) {
      std::fprintf(stderr,
                   "malformed probe: oversized frame got no typed error\n");
      return false;
    }
  }
  // Truncated header, then random blobs (type byte steered away from
  // kShutdown so a lucky frame cannot legitimately stop the server).
  {
    const int fd = RawConnect(socket_path);
    if (fd < 0) return false;
    SendRaw(fd, {0xfe, 0xed});
    ::close(fd);
  }
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 12; ++i) {
    const int fd = RawConnect(socket_path);
    if (fd < 0) return false;
    std::vector<uint8_t> blob(1 + next() % 40);
    for (uint8_t& b : blob) b = static_cast<uint8_t>(next());
    if (blob.size() >= 5 &&
        blob[4] == static_cast<uint8_t>(serve::MsgType::kShutdown)) {
      blob[4] = 0x7f;
    }
    SendRaw(fd, blob);
    ::close(fd);
  }
  // The server must still greet, answer, and have counted the garbage.
  try {
    serve::Client client(socket_path, "malformed-probe",
                         serve::TenantClass::kBestEffort);
    // The blob senders hung up without reading replies, so their connection
    // threads may still be draining; poll until the counters catch up.
    serve::StatsReply stats = client.Stats();
    for (int i = 0; i < 500 && stats.malformed < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      stats = client.Stats();
    }
    if (stats.malformed < 2) {
      std::fprintf(stderr,
                   "malformed probe: server counted %llu malformed frames, "
                   "expected >= 2\n",
                   static_cast<unsigned long long>(stats.malformed));
      return false;
    }
    std::printf("malformed probe: server survived, counted %llu garbage "
                "frames\n",
                static_cast<unsigned long long>(stats.malformed));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "malformed probe: server unusable after: %s\n",
                 e.what());
    return false;
  }
  return true;
}

/// Phase 1: `sessions` short sessions round-robin across the three classes,
/// driven by a pool of threads. Session i gets class i % 3 and runs
/// per_session queries from the mix, so every class sees every shape.
std::vector<Samples> RunSteadyPhase(const Options& opts,
                                    const std::string& socket_path,
                                    const References& ref) {
  std::vector<Samples> per_class(kNumClasses);
  std::mutex merge_mu;
  std::vector<std::thread> drivers;
  for (unsigned t = 0; t < opts.drivers; ++t) {
    drivers.emplace_back([&, t] {
      std::vector<Samples> local(kNumClasses);
      for (size_t i = t; i < opts.sessions; i += opts.drivers) {
        const size_t cls_index = i % kNumClasses;
        const serve::TenantClass cls = kClasses[cls_index];
        // One tenant per class: sessions of a class share one fair-share
        // account, which is what "per-tenant QoS" meters.
        const std::string tenant =
            std::string("steady-") + serve::TenantClassName(cls);
        try {
          serve::Client client(socket_path, tenant, cls);
          for (unsigned j = 0; j < opts.per_session; ++j) {
            const std::string& q =
                opts.queries[(i * opts.per_session + j) % opts.queries.size()];
            local[cls_index].Record(q, client.Query(q), ref);
          }
        } catch (const std::exception& e) {
          ++local[cls_index].failed;
          if (local[cls_index].first_error.empty()) {
            local[cls_index].first_error = e.what();
          }
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      for (size_t c = 0; c < kNumClasses; ++c) {
        per_class[c].Absorb(local[c]);
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  return per_class;
}

/// Phase 2: batch connections flood the queue for the whole phase while one
/// interactive prober measures its tail through the same scheduler.
/// Returns {interactive samples, batch samples}.
std::vector<Samples> RunFloodPhase(const Options& opts,
                                   const std::string& socket_path,
                                   const References& ref) {
  std::vector<Samples> out(2);
  std::atomic<bool> stop{false};
  std::mutex merge_mu;
  std::vector<std::thread> flood;
  for (unsigned f = 0; f < opts.flood_conns; ++f) {
    flood.emplace_back([&, f] {
      Samples local;
      try {
        serve::Client client(socket_path, "flood", serve::TenantClass::kBatch);
        size_t n = f;  // stagger the shape each connection starts on
        while (!stop.load(std::memory_order_relaxed)) {
          const std::string& q = opts.queries[n++ % opts.queries.size()];
          local.Record(q, client.Query(q), ref);
        }
      } catch (const std::exception& e) {
        ++local.failed;
        if (local.first_error.empty()) local.first_error = e.what();
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      out[1].Absorb(local);
    });
  }

  {
    Samples probe;
    try {
      serve::Client client(socket_path, "probe",
                           serve::TenantClass::kInteractive);
      for (unsigned j = 0; j < opts.probe_queries; ++j) {
        const std::string& q = opts.queries[j % opts.queries.size()];
        probe.Record(q, client.Query(q), ref);
      }
    } catch (const std::exception& e) {
      ++probe.failed;
      if (probe.first_error.empty()) probe.first_error = e.what();
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    out[0].Absorb(probe);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : flood) t.join();
  return out;
}

void PrintRow(const char* label, const Samples& s) {
  const core::LatencySummary wall = core::SummarizeLatencies(s.wall_ms);
  const core::LatencySummary wait = core::SummarizeLatencies(s.wait_ms);
  const core::LatencySummary total = core::SummarizeLatencies(s.total_ms);
  std::printf(
      "%-20s %8zu %6zu %6zu %6zu %9.3f %9.3f %9.3f %9.3f %9.3f\n", label,
      s.queries, s.hits, s.wrong, s.rejected, wall.p50, wall.p99, wait.p95,
      wait.p99, total.p99);
}

void WriteSamplesJson(std::ofstream& out, const char* name, const Samples& s,
                      bool trailing_comma) {
  const core::LatencySummary wall = core::SummarizeLatencies(s.wall_ms);
  const core::LatencySummary wait = core::SummarizeLatencies(s.wait_ms);
  const core::LatencySummary total = core::SummarizeLatencies(s.total_ms);
  out << "    \"" << name << "\": {\"queries\": " << s.queries
      << ", \"cache_hits\": " << s.hits << ", \"wrong\": " << s.wrong
      << ", \"rejected\": " << s.rejected << ", \"failed\": " << s.failed
      << ", \"aged\": " << s.aged << ", \"wall_p50_ms\": " << wall.p50
      << ", \"wall_p95_ms\": " << wall.p95 << ", \"wall_p99_ms\": " << wall.p99
      << ", \"wait_p95_ms\": " << wait.p95 << ", \"wait_p99_ms\": " << wait.p99
      << ", \"total_p99_ms\": " << total.p99 << "}"
      << (trailing_comma ? "," : "") << "\n";
}

int Run(const Options& opts) {
  // Self-host unless --connect points at an external gpudb_server. The
  // self-hosted server still listens on a real socket so both modes exercise
  // the full protocol path.
  std::unique_ptr<serve::QueryServer> server;
  std::string socket_path = opts.connect_path;
  if (socket_path.empty()) {
    core::RegisterBuiltinBackends();
    serve::ServerOptions server_opts;
    server_opts.socket_path =
        "/tmp/bench_serving_" + std::to_string(::getpid()) + ".sock";
    server_opts.catalog.scale_factor = opts.scale_factor;
    server_opts.catalog.seed = opts.seed;
    server_opts.catalog.backend = opts.backend;
    server_opts.catalog.use_encoding = opts.use_encoding;
    server_opts.num_clients = opts.server_clients;
    server = std::make_unique<serve::QueryServer>(server_opts);
    server->Start();
    socket_path = server_opts.socket_path;
  }

  // The dataset description comes from the handshake, so an external
  // server's answers are verified against *its* dataset, not our flags.
  double sf = opts.scale_factor;
  uint64_t seed = opts.seed;
  std::string backend = opts.backend;
  bool encoded = opts.use_encoding;
  {
    serve::Client hello_client(socket_path, "bench-setup",
                               serve::TenantClass::kBestEffort);
    sf = hello_client.hello().scale_factor;
    seed = hello_client.hello().seed;
    backend = hello_client.hello().backend;
    encoded = hello_client.hello().encoded;
  }
  std::printf(
      "bench_serving: %s sf=%g seed=%llu backend=%s encoding=%s "
      "sessions=%zu per-session=%u drivers=%u\n",
      opts.connect_path.empty() ? "self-hosted" : opts.connect_path.c_str(),
      sf, static_cast<unsigned long long>(seed), backend.c_str(),
      encoded ? "on" : "off", opts.sessions, opts.per_session, opts.drivers);
  const References ref = ComputeReferences(sf, seed);

  if (opts.probe_malformed && !RunMalformedProbe(socket_path)) {
    if (server != nullptr) server->Stop();
    std::printf("bench_serving: FAIL\n");
    return 1;
  }

  const std::vector<Samples> steady =
      RunSteadyPhase(opts, socket_path, ref);
  const std::vector<Samples> flood = RunFloodPhase(opts, socket_path, ref);

  std::printf(
      "\n%-20s %8s %6s %6s %6s %9s %9s %9s %9s %9s\n", "phase/class",
      "queries", "hits", "wrong", "rej", "wall_p50", "wall_p99", "wait_p95",
      "wait_p99", "e2e_p99");
  for (size_t c = 0; c < kNumClasses; ++c) {
    const std::string label =
        std::string("steady/") + serve::TenantClassName(kClasses[c]);
    PrintRow(label.c_str(), steady[c]);
  }
  PrintRow("flood/probe", flood[0]);
  PrintRow("flood/batch", flood[1]);

  Samples total;
  for (const Samples& s : steady) total.Absorb(s);
  total.Absorb(flood[0]);
  total.Absorb(flood[1]);

  const double hit_rate =
      total.queries > 0 ? static_cast<double>(total.hits) /
                              static_cast<double>(total.queries)
                        : 0.0;
  const core::LatencySummary probe_wait =
      core::SummarizeLatencies(flood[0].wait_ms);
  const core::LatencySummary probe_total =
      core::SummarizeLatencies(flood[0].total_ms);
  const core::LatencySummary batch_wait =
      core::SummarizeLatencies(flood[1].wait_ms);
  const core::LatencySummary batch_total =
      core::SummarizeLatencies(flood[1].total_ms);

  std::printf(
      "\ntotal: %zu queries  hit rate %.4f  wrong %zu  rejected %zu  "
      "failed %zu  aged %zu\n",
      total.queries, hit_rate, total.wrong, total.rejected, total.failed,
      total.aged);
  std::printf(
      "flood QoS: interactive p99 end-to-end %.3f ms / wait %.3f ms  vs  "
      "batch p99 end-to-end %.3f ms / wait %.3f ms\n",
      probe_total.p99, probe_wait.p99, batch_total.p99, batch_wait.p99);

  // Acceptance gates.
  bool ok = true;
  if (total.wrong > 0 || total.failed > 0 || total.rejected > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu wrong, %zu failed, %zu rejected (first: %s)\n",
                 total.wrong, total.failed, total.rejected,
                 total.first_error.c_str());
    ok = false;
  }
  if (total.hits == 0 || hit_rate < opts.min_hit_rate) {
    std::fprintf(stderr, "FAIL: plan-cache hit rate %.4f below %.4f\n",
                 hit_rate, opts.min_hit_rate);
    ok = false;
  }
  // The fair-share gate: with batch saturating the queue, the interactive
  // probe's p99 must not regress past the batch tail. Execution wall time
  // is flood-independent (identical work whichever class submits it), so a
  // flood-induced regression shows up entirely in queue wait — gating on
  // wait p99 bounds the end-to-end tail without inheriting execution-time
  // noise. Non-strict, so an idle queue (every wait ~0) still passes.
  constexpr double kEps = 1e-6;
  if (probe_wait.p99 > batch_wait.p99 + kEps) {
    std::fprintf(stderr,
                 "FAIL: interactive p99 queue wait %.3f ms exceeds batch "
                 "%.3f ms under flood\n",
                 probe_wait.p99, batch_wait.p99);
    ok = false;
  }

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    out << "{\n"
        << "  \"scale_factor\": " << sf << ",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"backend\": \"" << backend << "\",\n"
        << "  \"encoding\": " << (encoded ? "true" : "false") << ",\n"
        << "  \"sessions\": " << opts.sessions << ",\n"
        << "  \"per_session\": " << opts.per_session << ",\n"
        << "  \"total_queries\": " << total.queries << ",\n"
        << "  \"cache_hit_rate\": " << hit_rate << ",\n"
        << "  \"wrong\": " << total.wrong << ",\n"
        << "  \"rejected\": " << total.rejected << ",\n"
        << "  \"failed\": " << total.failed << ",\n"
        << "  \"aged\": " << total.aged << ",\n"
        << "  \"classes\": {\n";
    for (size_t c = 0; c < kNumClasses; ++c) {
      WriteSamplesJson(out, serve::TenantClassName(kClasses[c]), steady[c],
                       /*trailing_comma=*/true);
    }
    WriteSamplesJson(out, "flood_probe", flood[0], /*trailing_comma=*/true);
    WriteSamplesJson(out, "flood_batch", flood[1], /*trailing_comma=*/false);
    out << "  },\n"
        << "  \"ok\": " << (ok ? "true" : "false") << "\n"
        << "}\n";
    std::printf("wrote %s\n", opts.json_path.c_str());
  }

  if (server != nullptr) server->Stop();
  std::printf(ok ? "bench_serving: PASS\n" : "bench_serving: FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) return 64;
  try {
    return Run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serving: %s\n", e.what());
    return 3;
  }
}
