// R-F5: Grouped aggregation (sum by key) vs. group count at fixed rows.
//
// The libraries' only realization is sort-based: sort_by_key + reduce_by_key
// (Thrust/Boost) or sort + sumByKey (ArrayFire) — the cost is dominated by
// the sort and is nearly independent of the group count. The handwritten
// backend aggregates into a hash table sized by the group count: it wins
// everywhere, most dramatically at low group counts. This is the "hashing
// left on the table" result of the paper.
#include "bench_common.h"

namespace bench {

void GroupByBench(benchmark::State& state, const std::string& name) {
  const size_t n = 1 << 20;
  const int32_t groups = static_cast<int32_t>(state.range(0));
  auto backend = core::BackendRegistry::Instance().Create(name);
  const auto keys = Upload(*backend, UniformInts(n, groups));
  const auto vals = Upload(*backend, UniformDoubles(n, 100.0));
  backend->GroupByAggregate(keys, vals, core::AggOp::kSum);  // warm

  size_t got_groups = 0;
  for (auto _ : state) {
    Region region(*backend);
    const auto result =
        backend->GroupByAggregate(keys, vals, core::AggOp::kSum);
    region.Stop(state);
    got_groups = result.num_groups;
  }
  state.counters["groups"] = static_cast<double>(got_groups);
  state.counters["rows"] = static_cast<double>(n);
}

void RegisterBenchmarks() {
  for (const auto& name : AllBackendNames()) {
    auto* b = benchmark::RegisterBenchmark(
        ("GroupBySum/" + name).c_str(),
        [name](benchmark::State& s) { GroupByBench(s, name); });
    b->UseManualTime()->Iterations(2);
    for (const int64_t g : {4, 64, 1024, 16384, 262144}) b->Arg(g);
  }
}

}  // namespace bench

BENCH_MAIN()
