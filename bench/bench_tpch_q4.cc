// R-T7 (extension): TPC-H Q4 end-to-end — the semi-join (EXISTS) query.
//
// Pipeline: column-column selection, gather, Unique (sort+unique in every
// library), semi-join against the filtered orders, grouped count.
#include "bench_common.h"
#include "tpch/queries.h"

namespace bench {

void Q4Bench(benchmark::State& state, const std::string& name,
             tpch::JoinStrategy strategy) {
  tpch::Config config;
  config.scale_factor = state.range(0) / 1000.0;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  auto backend = core::BackendRegistry::Instance().Create(name);
  const auto dev_li = storage::UploadTable(backend->stream(), lineitem);
  const auto dev_ord = storage::UploadTable(backend->stream(), orders);

  tpch::RunQ4(*backend, dev_ord, dev_li, tpch::Q4Params(), strategy);  // warm
  for (auto _ : state) {
    Region region(*backend);
    benchmark::DoNotOptimize(
        tpch::RunQ4(*backend, dev_ord, dev_li, tpch::Q4Params(), strategy));
    region.Stop(state);
  }
  state.counters["lineitem_rows"] = static_cast<double>(lineitem.num_rows());
}

void RegisterBenchmarks() {
  for (const auto& name : AllBackendNames()) {
    auto* b = benchmark::RegisterBenchmark(
        ("TpchQ4/" + name).c_str(), [name](benchmark::State& s) {
          Q4Bench(s, name, tpch::JoinStrategy::kAuto);
        });
    b->UseManualTime()->Iterations(1)->Arg(10);  // SF 0.01
  }
  auto* nlj = benchmark::RegisterBenchmark(
      "TpchQ4/Handwritten-nlj", [](benchmark::State& s) {
        Q4Bench(s, backends::kHandwritten, tpch::JoinStrategy::kNestedLoops);
      });
  nlj->UseManualTime()->Iterations(1)->Arg(10);
}

}  // namespace bench

BENCH_MAIN()
