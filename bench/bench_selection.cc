// R-F2: Selection runtime vs. rows per library, across selectivities.
//
// Pipelines under test (Table II):
//   Thrust / Boost.Compute: transform -> exclusive_scan -> scatter_if
//   ArrayFire:              where(fused predicate) (+ JIT graph overhead)
//   Handwritten:            one fused kernel with atomic ticketing
// Expected shape: handwritten < Thrust < ArrayFire ~ Thrust < Boost.Compute
// (OpenCL launch overhead; first-call compile excluded here by warmup).
#include "bench_common.h"

namespace bench {

void SelectionBench(benchmark::State& state, const std::string& name) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int32_t selectivity_pct = static_cast<int32_t>(state.range(1));
  auto backend = core::BackendRegistry::Instance().Create(name);
  const auto data = UniformInts(n, 100);
  const auto col = Upload(*backend, data);
  const auto pred = core::Predicate::Make("x", core::CompareOp::kLt,
                                          static_cast<double>(selectivity_pct));
  // Warm the program cache (Boost.Compute) so this experiment isolates the
  // steady-state operator cost; bench_compile_overhead measures cold calls.
  backend->Select(col, pred);

  size_t selected = 0;
  for (auto _ : state) {
    Region region(*backend);
    const auto sel = backend->Select(col, pred);
    region.Stop(state);
    selected = sel.count;
  }
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["rows"] = static_cast<double>(n);
}

void RegisterBenchmarks() {
  for (const auto& name : AllBackendNames()) {
    auto* b = benchmark::RegisterBenchmark(
        ("Selection/" + name).c_str(),
        [name](benchmark::State& s) { SelectionBench(s, name); });
    b->UseManualTime()->Iterations(3);
    for (const int64_t n : {1 << 16, 1 << 18, 1 << 20, 1 << 22}) {
      for (const int64_t sel : {1, 10, 50, 90}) {
        b->Args({n, sel});
      }
    }
  }
}

}  // namespace bench

BENCH_MAIN()
