// R-F8: Boost.Compute run-time kernel compilation overhead.
//
// OpenCL programs are compiled on first use and cached per context. This
// bench runs the same operator (a) on a fresh backend instance — cold cache,
// every kernel source pays clBuildProgram — and (b) on a warmed instance.
// Expected shape: cold calls are dominated by compilation (tens of ms per
// program), two to three orders of magnitude above the warm operator cost
// at small sizes; CUDA-based libraries have no such cliff.
#include "bench_common.h"

namespace bench {

void ColdBench(benchmark::State& state, const std::string& name) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto data = UniformInts(n, 100);
  for (auto _ : state) {
    // Fresh backend per iteration: for Boost.Compute this is a fresh OpenCL
    // context whose program cache is empty.
    auto backend = core::BackendRegistry::Instance().Create(name);
    const auto col = Upload(*backend, data);
    Region region(*backend);
    benchmark::DoNotOptimize(backend->Select(
        col, core::Predicate::Make("x", core::CompareOp::kLt, 50.0)));
    region.Stop(state);
  }
}

void WarmBench(benchmark::State& state, const std::string& name) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto backend = core::BackendRegistry::Instance().Create(name);
  const auto col = Upload(*backend, UniformInts(n, 100));
  const auto pred = core::Predicate::Make("x", core::CompareOp::kLt, 50.0);
  backend->Select(col, pred);  // warm the cache
  for (auto _ : state) {
    Region region(*backend);
    benchmark::DoNotOptimize(backend->Select(col, pred));
    region.Stop(state);
  }
}

void RegisterBenchmarks() {
  for (const auto& name : AllBackendNames()) {
    auto* cold = benchmark::RegisterBenchmark(
        ("SelectFirstCall/" + name).c_str(),
        [name](benchmark::State& s) { ColdBench(s, name); });
    cold->UseManualTime()->Iterations(3)->Arg(1 << 18);
    auto* warm = benchmark::RegisterBenchmark(
        ("SelectCachedCall/" + name).c_str(),
        [name](benchmark::State& s) { WarmBench(s, name); });
    warm->UseManualTime()->Iterations(3)->Arg(1 << 18);
  }
}

}  // namespace bench

BENCH_MAIN()
