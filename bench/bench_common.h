// Shared benchmark scaffolding.
//
// Benchmarks report the *simulated device time* of the measured region as
// google-benchmark manual time (deterministic: a function of launches, bytes
// and compiles — see gpusim/cost_model.h), plus device work counters. Wall
// clock on the host CPU is meaningless for a simulated GPU and is not
// reported.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/backend.h"
#include "core/registry.h"
#include "storage/device_column.h"

namespace bench {

/// The four backends in the paper's comparison order.
inline const std::vector<std::string>& AllBackendNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      backends::kArrayFire, backends::kBoostCompute, backends::kThrust,
      backends::kHandwritten};
  return *names;
}

/// Measures one region on the backend's stream and feeds google-benchmark.
class Region {
 public:
  explicit Region(core::Backend& backend)
      : stream_(backend.stream()),
        start_ns_(stream_.now_ns()),
        start_(stream_.device().Snapshot()) {}

  explicit Region(gpusim::Stream& stream)
      : stream_(stream),
        start_ns_(stream.now_ns()),
        start_(stream.device().Snapshot()) {}

  /// Ends the region: records simulated seconds as the iteration's manual
  /// time and accumulates counters on the benchmark state.
  void Stop(benchmark::State& state) {
    const double seconds = (stream_.now_ns() - start_ns_) / 1e9;
    state.SetIterationTime(seconds);
    const auto delta = stream_.device().Snapshot().Delta(start_);
    state.counters["kernels"] += static_cast<double>(delta.kernels_launched);
    state.counters["MiB_moved"] +=
        static_cast<double>(delta.bytes_read + delta.bytes_written +
                            delta.bytes_h2d + delta.bytes_d2h +
                            delta.bytes_d2d) /
        (1024.0 * 1024.0);
    state.counters["programs"] +=
        static_cast<double>(delta.programs_compiled);
    state.counters["pool_hits"] += static_cast<double>(delta.pool_hits);
    state.counters["pool_misses"] += static_cast<double>(delta.pool_misses);
    // Gauge: bytes cached in the device pool at region end (not a delta).
    state.counters["bytes_pooled"] = static_cast<double>(delta.bytes_pooled);
  }

 private:
  gpusim::Stream& stream_;
  uint64_t start_ns_;
  gpusim::CounterSnapshot start_;
};

/// Uniform random int32 column in [0, domain).
inline std::vector<int32_t> UniformInts(size_t n, int32_t domain,
                                        uint32_t seed = 1234) {
  std::mt19937 rng(seed);
  std::vector<int32_t> out(n);
  for (auto& v : out) v = static_cast<int32_t>(rng() % domain);
  return out;
}

/// Uniform random doubles in [0, hi).
inline std::vector<double> UniformDoubles(size_t n, double hi,
                                          uint32_t seed = 1234) {
  std::mt19937 rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = hi * (rng() >> 8) / static_cast<double>(1 << 24);
  return out;
}

inline storage::DeviceColumn Upload(core::Backend& backend,
                                    const std::vector<int32_t>& v) {
  return storage::UploadColumn(backend.stream(), storage::Column(v));
}

inline storage::DeviceColumn Upload(core::Backend& backend,
                                    const std::vector<double>& v) {
  return storage::UploadColumn(backend.stream(), storage::Column(v));
}

/// Standard main: register built-ins, then run.
#define BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                    \
    core::RegisterBuiltinBackends();                    \
    bench::RegisterBenchmarks();                        \
    benchmark::Initialize(&argc, argv);                 \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                \
    benchmark::Shutdown();                              \
    return 0;                                           \
  }

}  // namespace bench

#endif  // BENCH_BENCH_COMMON_H_
