// R-T3: TPC-H Q1 end-to-end per library, at two scale factors.
//
// Q1 = low-selectivity date filter + 5 gathers + projection arithmetic + six
// grouped aggregations. The libraries' sort-based reduce_by_key re-sorts for
// every aggregate; the handwritten backend hashes. This is the heaviest
// operator-chaining workload in the study.
#include "bench_common.h"
#include "tpch/queries.h"

namespace bench {

void Q1Bench(benchmark::State& state, const std::string& name) {
  const double sf = state.range(0) / 1000.0;
  tpch::Config config;
  config.scale_factor = sf;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  auto backend = core::BackendRegistry::Instance().Create(name);
  const storage::DeviceTable dev =
      storage::UploadTable(backend->stream(), lineitem);

  tpch::RunQ1(*backend, dev);  // warm program cache
  size_t groups = 0;
  for (auto _ : state) {
    Region region(*backend);
    const auto rows = tpch::RunQ1(*backend, dev);
    region.Stop(state);
    groups = rows.size();
  }
  state.counters["rows"] = static_cast<double>(lineitem.num_rows());
  state.counters["result_groups"] = static_cast<double>(groups);
}

void RegisterBenchmarks() {
  for (const auto& name : AllBackendNames()) {
    auto* b = benchmark::RegisterBenchmark(
        ("TpchQ1/" + name).c_str(),
        [name](benchmark::State& s) { Q1Bench(s, name); });
    b->UseManualTime()->Iterations(2);
    b->Arg(10);   // SF 0.01
    b->Arg(100);  // SF 0.1
  }
}

}  // namespace bench

BENCH_MAIN()
