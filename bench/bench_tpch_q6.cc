// R-T4: TPC-H Q6 end-to-end per library, at two scale factors.
//
// Q6 = 5-predicate conjunctive selection + 2 gathers + product + reduction.
// The per-backend differences compound: ArrayFire pays one where() pipeline
// per predicate plus setIntersect chains; Thrust/Boost pay one transform per
// predicate plus scan+scatter; handwritten runs one fused kernel. Transfer
// time (upload of lineitem) is reported separately.
#include "bench_common.h"
#include "tpch/queries.h"

namespace bench {

void Q6Bench(benchmark::State& state, const std::string& name) {
  const double sf = state.range(0) / 1000.0;
  tpch::Config config;
  config.scale_factor = sf;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  auto backend = core::BackendRegistry::Instance().Create(name);

  const uint64_t upload_start_ns = backend->stream().now_ns();
  const storage::DeviceTable dev =
      storage::UploadTable(backend->stream(), lineitem);
  const double upload_ms =
      (backend->stream().now_ns() - upload_start_ns) / 1e6;

  tpch::RunQ6(*backend, dev);  // warm program cache
  double revenue = 0;
  for (auto _ : state) {
    Region region(*backend);
    revenue = tpch::RunQ6(*backend, dev);
    region.Stop(state);
  }
  state.counters["rows"] = static_cast<double>(lineitem.num_rows());
  state.counters["upload_ms"] = upload_ms;
  state.counters["revenue"] = revenue;
}

/// The expert upper bound: the entire query body as one fused kernel.
void Q6FusedBench(benchmark::State& state) {
  tpch::Config config;
  config.scale_factor = state.range(0) / 1000.0;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  gpusim::Stream stream(gpusim::Device::Default(),
                        gpusim::ApiProfile::Cuda());
  const auto dev = storage::UploadTable(stream, lineitem);
  for (auto _ : state) {
    Region region(stream);
    benchmark::DoNotOptimize(tpch::RunQ6FusedHandwritten(stream, dev));
    region.Stop(state);
  }
  state.counters["rows"] = static_cast<double>(lineitem.num_rows());
}

void RegisterBenchmarks() {
  for (const auto& name : AllBackendNames()) {
    auto* b = benchmark::RegisterBenchmark(
        ("TpchQ6/" + name).c_str(),
        [name](benchmark::State& s) { Q6Bench(s, name); });
    b->UseManualTime()->Iterations(2);
    b->Arg(10);   // SF 0.01
    b->Arg(100);  // SF 0.1
  }
  auto* fused = benchmark::RegisterBenchmark(
      "TpchQ6/Handwritten-fused",
      [](benchmark::State& s) { Q6FusedBench(s); });
  fused->UseManualTime()->Iterations(2);
  fused->Arg(10);
  fused->Arg(100);
}

}  // namespace bench

BENCH_MAIN()
