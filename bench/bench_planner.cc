// Hybrid plan dispatch vs the best single backend, per TPC-H query.
//
// For every query this bench runs the hand-coded operator chain on each
// candidate backend, replays the same query as a *pinned* plan (checking the
// plan reproduces the hand-coded answer AND charges a bit-identical
// simulated timeline — the executor's golden property), then runs the
// cost-dispatched hybrid plan and reports its speedup over the best single
// backend. The process exits non-zero if any plan answer diverges from the
// hand-coded one, any pinned timeline is not bit-identical, or the hybrid
// plan is slower than the best single backend on any query.
//
// Not a google-benchmark binary: the unit of work is a whole optimize +
// execute cycle and the pass/fail verdict needs cross-backend state, so it
// drives itself and optionally writes machine-readable JSON for CI.
//
// Usage:
//   bench_planner [--sf=0.01] [--queries=q1,q6,q3,q4,q14]
//                 [--backends=Handwritten,Thrust,ArrayFire,Boost.Compute]
//                 [--json=FILE]
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/registry.h"
#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/tpch_plans.h"
#include "storage/device_column.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

struct Options {
  double scale_factor = 0.01;
  std::vector<std::string> queries = {"q1", "q6", "q3", "q4", "q14"};
  std::vector<std::string> backends = {
      backends::kHandwritten, backends::kThrust, backends::kArrayFire,
      backends::kBoostCompute};
  std::string json_path;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--sf=")) {
      opts->scale_factor = std::stod(v);
    } else if (const char* v = value("--queries=")) {
      opts->queries = SplitCsv(v);
    } else if (const char* v = value("--backends=")) {
      opts->backends = SplitCsv(v);
    } else if (const char* v = value("--json=")) {
      opts->json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->queries.empty() && !opts->backends.empty();
}

bool NearlyEqual(double a, double b) {
  return std::abs(a - b) <= std::abs(b) * 1e-9 + 1e-6;
}

/// Hand-coded answers for every query kind, so one struct can carry any of
/// the five result shapes.
struct Answer {
  std::vector<tpch::Q1Row> q1;
  double scalar = 0;  // q6 / q14
  std::vector<tpch::Q3Row> q3;
  std::vector<tpch::Q4Row> q4;
};

bool AnswersMatch(const std::string& query, const Answer& a, const Answer& b) {
  if (query == "q1") {
    if (a.q1.size() != b.q1.size()) return false;
    for (size_t i = 0; i < a.q1.size(); ++i) {
      const tpch::Q1Row& x = a.q1[i];
      const tpch::Q1Row& y = b.q1[i];
      if (x.returnflag != y.returnflag || x.linestatus != y.linestatus ||
          x.count_order != y.count_order)
        return false;
      if (!NearlyEqual(x.sum_qty, y.sum_qty) ||
          !NearlyEqual(x.sum_base_price, y.sum_base_price) ||
          !NearlyEqual(x.sum_disc_price, y.sum_disc_price) ||
          !NearlyEqual(x.sum_charge, y.sum_charge) ||
          !NearlyEqual(x.avg_qty, y.avg_qty) ||
          !NearlyEqual(x.avg_price, y.avg_price) ||
          !NearlyEqual(x.avg_disc, y.avg_disc))
        return false;
    }
    return true;
  }
  if (query == "q3") {
    if (a.q3.size() != b.q3.size()) return false;
    for (size_t i = 0; i < a.q3.size(); ++i) {
      if (a.q3[i].orderkey != b.q3[i].orderkey ||
          !NearlyEqual(a.q3[i].revenue, b.q3[i].revenue))
        return false;
    }
    return true;
  }
  if (query == "q4") {
    if (a.q4.size() != b.q4.size()) return false;
    for (size_t i = 0; i < a.q4.size(); ++i) {
      if (a.q4[i].orderpriority != b.q4[i].orderpriority ||
          a.q4[i].order_count != b.q4[i].order_count)
        return false;
    }
    return true;
  }
  return NearlyEqual(a.scalar, b.scalar);
}

struct BackendRun {
  std::string name;
  uint64_t hand_ns = 0;
  uint64_t plan_ns = 0;
  bool answers_match = false;
  bool ns_identical = false;
};

struct QueryVerdict {
  std::string query;
  std::vector<BackendRun> runs;
  std::string best_backend;
  uint64_t best_ns = 0;
  uint64_t hybrid_ns = 0;
  bool hybrid_match = false;
  bool hybrid_le_best = false;
};

int Run(const Options& opts) {
  core::RegisterBuiltinBackends();

  tpch::Config config;
  config.scale_factor = opts.scale_factor;
  const storage::Table h_lineitem = tpch::GenerateLineitem(config);
  const storage::Table h_orders = tpch::GenerateOrders(config);
  const storage::Table h_customer = tpch::GenerateCustomer(config);
  const storage::Table h_part = tpch::GeneratePart(config);

  // Upload once on a setup stream; every measured run only reads the
  // device-resident tables.
  gpusim::Stream setup(gpusim::Device::Default(), gpusim::ApiProfile::Cuda());
  const storage::DeviceTable lineitem = storage::UploadTable(setup, h_lineitem);
  const storage::DeviceTable orders = storage::UploadTable(setup, h_orders);
  const storage::DeviceTable customer =
      storage::UploadTable(setup, h_customer);
  const storage::DeviceTable part = storage::UploadTable(setup, h_part);

  const auto run_hand = [&](const std::string& q,
                            core::Backend& b) -> Answer {
    Answer a;
    if (q == "q1") {
      a.q1 = tpch::RunQ1(b, lineitem);
    } else if (q == "q6") {
      a.scalar = tpch::RunQ6(b, lineitem);
    } else if (q == "q3") {
      a.q3 = tpch::RunQ3(b, customer, orders, lineitem);
    } else if (q == "q4") {
      a.q4 = tpch::RunQ4(b, orders, lineitem);
    } else if (q == "q14") {
      a.scalar = tpch::RunQ14(b, part, lineitem);
    } else {
      throw std::invalid_argument("unknown query kind: " + q);
    }
    return a;
  };
  const auto build_plan = [&](const std::string& q) -> plan::QueryPlanBundle {
    if (q == "q1") return plan::BuildQ1Plan(lineitem);
    if (q == "q6") return plan::BuildQ6Plan(lineitem);
    if (q == "q3") return plan::BuildQ3Plan(customer, orders, lineitem);
    if (q == "q4") return plan::BuildQ4Plan(orders, lineitem);
    return plan::BuildQ14Plan(part, lineitem);
  };
  const auto extract = [&](const std::string& q,
                           const plan::QueryPlanBundle& bundle,
                           const plan::ExecutionResult& res) -> Answer {
    Answer a;
    if (q == "q1") {
      a.q1 = plan::ExtractQ1(bundle, res);
    } else if (q == "q6") {
      a.scalar = plan::ExtractQ6(bundle, res);
    } else if (q == "q3") {
      a.q3 = plan::ExtractQ3(bundle, res, tpch::Q3Params());
    } else if (q == "q4") {
      a.q4 = plan::ExtractQ4(bundle, res);
    } else {
      a.scalar = plan::ExtractQ14(bundle, res);
    }
    return a;
  };

  std::printf("bench_planner: sf=%g rows(lineitem)=%zu\n\n",
              opts.scale_factor, h_lineitem.num_rows());
  std::printf("%-4s %-14s %12s %12s %7s %10s\n", "qry", "backend", "hand_ns",
              "plan_ns", "match", "identical");

  bool ok = true;
  bool join_strict_win = false;
  std::vector<QueryVerdict> verdicts;
  auto& registry = core::BackendRegistry::Instance();

  for (const std::string& q : opts.queries) {
    QueryVerdict v;
    v.query = q;
    const plan::QueryPlanBundle bundle = build_plan(q);

    for (const std::string& name : opts.backends) {
      BackendRun r;
      r.name = name;

      // Hand-coded chain on a fresh backend instance (so OpenCL-style
      // program compiles are charged the same way in both runs).
      auto hand_backend = registry.Create(name);
      const uint64_t t0 = hand_backend->stream().now_ns();
      const Answer hand = run_hand(q, *hand_backend);
      r.hand_ns = hand_backend->stream().now_ns() - t0;

      // Same query as a plan, pinned to the same backend.
      plan::OptimizerOptions pin_opts;
      pin_opts.pin_backend = name;
      const plan::PhysicalPlan phys = plan::Optimize(bundle.plan, pin_opts);
      auto plan_backend = registry.Create(name);
      const plan::ExecutionResult res = plan::RunPinned(phys, *plan_backend);
      r.plan_ns = res.total_ns;
      r.answers_match = AnswersMatch(q, extract(q, bundle, res), hand);
      r.ns_identical = r.plan_ns == r.hand_ns;
      if (!r.answers_match || !r.ns_identical) ok = false;

      if (v.best_backend.empty() || r.hand_ns < v.best_ns) {
        v.best_backend = name;
        v.best_ns = r.hand_ns;
      }
      std::printf("%-4s %-14s %12llu %12llu %7s %10s\n", q.c_str(),
                  name.c_str(), static_cast<unsigned long long>(r.hand_ns),
                  static_cast<unsigned long long>(r.plan_ns),
                  r.answers_match ? "yes" : "NO",
                  r.ns_identical ? "yes" : "NO");
      v.runs.push_back(r);
    }

    // Cost-dispatched hybrid plan against the hand-coded golden answer
    // (the first backend's — all matched each other above).
    const plan::PhysicalPlan phys =
        plan::Optimize(bundle.plan, plan::OptimizerOptions());
    const plan::ExecutionResult res = plan::RunHybrid(phys);
    v.hybrid_ns = res.total_ns;
    auto golden_backend = registry.Create(opts.backends.front());
    v.hybrid_match =
        AnswersMatch(q, extract(q, bundle, res), run_hand(q, *golden_backend));
    v.hybrid_le_best = v.hybrid_ns <= v.best_ns;
    if (!v.hybrid_match || !v.hybrid_le_best) ok = false;
    const bool join_query = q == "q3" || q == "q4" || q == "q14";
    if (join_query && v.hybrid_ns < v.best_ns) join_strict_win = true;

    std::printf("%-4s %-14s %12s %12llu %7s %10s  (best %s %llu, %.2fx)\n\n",
                q.c_str(), "Hybrid", "-",
                static_cast<unsigned long long>(v.hybrid_ns),
                v.hybrid_match ? "yes" : "NO",
                v.hybrid_le_best ? "<=best" : "SLOWER", v.best_backend.c_str(),
                static_cast<unsigned long long>(v.best_ns),
                v.hybrid_ns ? static_cast<double>(v.best_ns) / v.hybrid_ns
                            : 0.0);
    verdicts.push_back(v);
  }

  std::printf("verdict: %s\n", ok ? "OK" : "FAILED");
  if (join_strict_win) {
    std::printf("hybrid strictly beat the best single backend on a join "
                "query\n");
  }

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    out << "{\n  \"scale_factor\": " << opts.scale_factor << ",\n"
        << "  \"ok\": " << (ok ? "true" : "false") << ",\n"
        << "  \"join_strict_win\": " << (join_strict_win ? "true" : "false")
        << ",\n  \"queries\": [\n";
    for (size_t i = 0; i < verdicts.size(); ++i) {
      const QueryVerdict& v = verdicts[i];
      out << "    {\"query\": \"" << v.query << "\", \"backends\": [";
      for (size_t j = 0; j < v.runs.size(); ++j) {
        const BackendRun& r = v.runs[j];
        out << (j ? ", " : "") << "{\"name\": \"" << r.name
            << "\", \"hand_ns\": " << r.hand_ns
            << ", \"plan_ns\": " << r.plan_ns << ", \"answers_match\": "
            << (r.answers_match ? "true" : "false") << ", \"ns_identical\": "
            << (r.ns_identical ? "true" : "false") << "}";
      }
      out << "], \"best_backend\": \"" << v.best_backend
          << "\", \"best_ns\": " << v.best_ns
          << ", \"hybrid_ns\": " << v.hybrid_ns << ", \"hybrid_match\": "
          << (v.hybrid_match ? "true" : "false") << ", \"hybrid_le_best\": "
          << (v.hybrid_le_best ? "true" : "false") << ", \"speedup\": "
          << (v.hybrid_ns ? static_cast<double>(v.best_ns) / v.hybrid_ns : 0)
          << "}" << (i + 1 < verdicts.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", opts.json_path.c_str());
  }

  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(stderr,
                 "usage: %s [--sf=F] [--queries=q1,q6,q3,q4,q14] "
                 "[--backends=A,B,...] [--json=FILE]\n",
                 argv[0]);
    return 64;
  }
  try {
    return Run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_planner: %s\n", e.what());
    return 3;
  }
}
