// Multi-device sharded execution: scaling sweep over simulated device counts.
//
// Sweeps N in {1, 2, 4, 8} simulated devices (gpusim::DeviceGroup) crossed
// with the five plan queries, running each query sharded across the group
// (plan/exchange.h): lineitem split into orderkey-snapped slices, one per
// device, build-side tables broadcast, per-device partials exchanged to
// device 0 over the group fabric. Every answer is verified against the host
// reference; the sweep reports per-device utilization, exchange traffic
// (p2p vs via-host), and scaling efficiency T1 / (N x TN).
//
// The binary doubles as the CI acceptance gate for the multi-device path and
// exits non-zero when:
//  * any answer mismatches the host reference at any device count,
//  * the 1-device sharded run is not bit-identical in simulated ns to the
//    governed single-device path (plan::RunGoverned) on a fresh device, or
//  * Q1 or Q6 scaling efficiency at 4 devices drops below 0.75.
//
// Usage:
//   bench_multidevice [--backend=Handwritten] [--queries=q1,q6,q14,q3,q4]
//                     [--devices=1,2,4,8] [--shards=0] [--sf=0.2]
//                     [--island=4] [--encoding=on|off] [--json=FILE]
//
// The default scale factor is sized so the per-shard body (transfer and
// kernel bytes, which shrink with the shard) dominates the per-shard fixed
// costs (kernel launches, transfer latencies, result fetches, which do not):
// small inputs are launch-bound and no amount of devices scales them.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/registry.h"
#include "gpusim/device_group.h"
#include "plan/exchange.h"
#include "plan/partition.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

struct Options {
  std::string backend = backends::kHandwritten;
  std::vector<std::string> queries = {"q1", "q6", "q14", "q3", "q4"};
  std::vector<int> devices = {1, 2, 4, 8};
  size_t force_shards = 0;
  double scale_factor = 0.2;
  int island = 4;
  bool use_encoding = false;
  std::string json_path;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--backend=")) {
      opts->backend = v;
    } else if (const char* v = value("--queries=")) {
      opts->queries = SplitCsv(v);
    } else if (const char* v = value("--devices=")) {
      opts->devices.clear();
      for (const auto& d : SplitCsv(v)) opts->devices.push_back(std::stoi(d));
    } else if (const char* v = value("--shards=")) {
      opts->force_shards = std::stoul(v);
    } else if (const char* v = value("--sf=")) {
      opts->scale_factor = std::stod(v);
    } else if (const char* v = value("--island=")) {
      opts->island = std::stoi(v);
    } else if (const char* v = value("--encoding=")) {
      const std::string mode = v;
      if (mode != "on" && mode != "off") {
        std::fprintf(stderr, "--encoding must be on or off\n");
        return false;
      }
      opts->use_encoding = mode == "on";
    } else if (const char* v = value("--json=")) {
      opts->json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->queries.empty() && !opts->devices.empty() &&
         opts->island > 0;
}

struct References {
  std::vector<tpch::Q1Row> q1;
  std::vector<tpch::Q3Row> q3;
  std::vector<tpch::Q4Row> q4;
  double q6 = 0;
  double q14 = 0;
};

bool Near(double got, double want) {
  return std::abs(got - want) <= std::abs(want) * 1e-9 + 1e-6;
}

/// Sharded merging re-associates float sums, so they compare with tolerance;
/// integer keys and counts must match exactly.
bool Verify(plan::TpchQuery q, const plan::TpchQueryResult& got,
            const References& ref, std::string* why) {
  switch (q) {
    case plan::TpchQuery::kQ1: {
      if (got.q1.size() != ref.q1.size()) {
        *why = "q1 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q1.size(); ++i) {
        const tpch::Q1Row& g = got.q1[i];
        const tpch::Q1Row& w = ref.q1[i];
        if (g.returnflag != w.returnflag || g.linestatus != w.linestatus ||
            g.count_order != w.count_order || !Near(g.sum_qty, w.sum_qty) ||
            !Near(g.sum_base_price, w.sum_base_price) ||
            !Near(g.sum_disc_price, w.sum_disc_price) ||
            !Near(g.sum_charge, w.sum_charge) ||
            !Near(g.avg_qty, w.avg_qty) || !Near(g.avg_price, w.avg_price) ||
            !Near(g.avg_disc, w.avg_disc)) {
          *why = "q1 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ3: {
      if (got.q3.size() != ref.q3.size()) {
        *why = "q3 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q3.size(); ++i) {
        if (got.q3[i].orderkey != ref.q3[i].orderkey ||
            !Near(got.q3[i].revenue, ref.q3[i].revenue)) {
          *why = "q3 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ4: {
      if (got.q4.size() != ref.q4.size()) {
        *why = "q4 row count mismatch";
        return false;
      }
      for (size_t i = 0; i < ref.q4.size(); ++i) {
        if (got.q4[i].orderpriority != ref.q4[i].orderpriority ||
            got.q4[i].order_count != ref.q4[i].order_count) {
          *why = "q4 row " + std::to_string(i) + " mismatch";
          return false;
        }
      }
      return true;
    }
    case plan::TpchQuery::kQ6:
      if (!Near(got.scalar, ref.q6)) {
        *why = "q6 scalar mismatch";
        return false;
      }
      return true;
    case plan::TpchQuery::kQ14:
      if (!Near(got.scalar, ref.q14)) {
        *why = "q14 scalar mismatch";
        return false;
      }
      return true;
  }
  *why = "unknown query";
  return false;
}

/// One (query, device-count) sweep point.
struct SweepPoint {
  std::string query;
  int devices = 0;
  size_t shards = 0;
  uint64_t sim_ns = 0;
  uint64_t t1_ns = 0;  ///< 1-device makespan of the same query
  double speedup = 0;
  double efficiency = 0;
  uint64_t exchange_bytes = 0;
  uint64_t exchange_p2p = 0;
  uint64_t exchange_via_host = 0;
  uint64_t broadcast_bytes = 0;
  bool ok = true;
  plan::ShardedRunStats stats;
};

int Run(const Options& opts) {
  core::RegisterBuiltinBackends();

  tpch::Config config;
  config.scale_factor = opts.scale_factor;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table customer = tpch::GenerateCustomer(config);
  const storage::Table part = tpch::GeneratePart(config);

  plan::TpchHostTables tables;
  tables.lineitem = &lineitem;
  tables.orders = &orders;
  tables.customer = &customer;
  tables.part = &part;

  References ref;
  ref.q1 = tpch::ReferenceQ1(lineitem);
  ref.q3 = tpch::ReferenceQ3(customer, orders, lineitem);
  ref.q4 = tpch::ReferenceQ4(orders, lineitem);
  ref.q6 = tpch::ReferenceQ6(lineitem);
  ref.q14 = tpch::ReferenceQ14(part, lineitem);

  gpusim::GroupTopology topo;
  topo.peer_island_size = opts.island;

  std::printf("bench_multidevice: backend=%s sf=%g rows(lineitem)=%zu "
              "island=%d encoding=%s\n\n",
              opts.backend.c_str(), opts.scale_factor, lineitem.num_rows(),
              opts.island, opts.use_encoding ? "on" : "off");
  std::printf("%5s %8s %7s %11s %8s %5s %10s %10s %9s %8s\n", "query",
              "devices", "shards", "sim_ms", "speedup", "eff", "exch_p2p",
              "exch_host", "util_min", "util_avg");

  std::vector<SweepPoint> points;
  bool all_ok = true;

  for (const std::string& qname : opts.queries) {
    const plan::TpchQuery q = plan::ParseTpchQuery(qname);
    uint64_t t1_ns = 0;

    for (const int nd : opts.devices) {
      // A fresh group per point: clean pools, counters, and peaks, so every
      // point's simulated timeline is a pure function of (query, N).
      gpusim::DeviceGroup group(nd, topo);
      plan::ShardedQueryOptions sq;
      sq.force_shards = opts.force_shards;
      sq.use_encoding = opts.use_encoding;
      plan::ShardedRunStats stats;
      const plan::TpchQueryResult result = plan::RunSharded(
          q, tables, group, opts.backend, sq, &stats);

      SweepPoint p;
      p.query = qname;
      p.devices = nd;
      p.shards = stats.shards;
      p.sim_ns = stats.simulated_ns;
      p.exchange_bytes = stats.exchange_bytes;
      p.exchange_p2p = stats.exchange_p2p_bytes;
      p.exchange_via_host = stats.exchange_via_host_bytes;
      p.broadcast_bytes = stats.broadcast_bytes;
      p.stats = stats;

      std::string why;
      if (!Verify(q, result, ref, &why)) {
        std::fprintf(stderr, "  WRONG %s at %d device(s): %s\n",
                     qname.c_str(), nd, why.c_str());
        p.ok = false;
        all_ok = false;
      }

      if (nd == 1) {
        t1_ns = stats.simulated_ns;
        // The 1-device sharded run must be bit-identical in simulated ns to
        // the governed path on an equally fresh device.
        gpusim::DeviceGroup base(1, topo);
        gpusim::Device::DeviceGuard guard(base.device(0));
        const std::unique_ptr<core::Backend> backend =
            core::BackendRegistry::Instance().Create(opts.backend);
        plan::GovernedQueryOptions gopt;
        gopt.force_partitions = opts.force_shards;
        gopt.use_encoding = opts.use_encoding;
        plan::GovernedRunStats gstats;
        (void)plan::RunGoverned(q, tables, *backend, gopt, &gstats);
        if (gstats.simulated_ns != stats.simulated_ns) {
          std::fprintf(stderr,
                       "  DIVERGED %s: 1-device sharded %llu ns != governed "
                       "%llu ns\n",
                       qname.c_str(),
                       static_cast<unsigned long long>(stats.simulated_ns),
                       static_cast<unsigned long long>(gstats.simulated_ns));
          p.ok = false;
          all_ok = false;
        }
      }
      p.t1_ns = t1_ns;
      if (t1_ns > 0 && p.sim_ns > 0) {
        p.speedup = static_cast<double>(t1_ns) / static_cast<double>(p.sim_ns);
        p.efficiency = p.speedup / static_cast<double>(nd);
      }
      if (nd == 4 && (q == plan::TpchQuery::kQ1 || q == plan::TpchQuery::kQ6) &&
          p.efficiency < 0.75) {
        std::fprintf(stderr,
                     "  SCALING %s at 4 devices: efficiency %.2f < 0.75\n",
                     qname.c_str(), p.efficiency);
        p.ok = false;
        all_ok = false;
      }

      double util_min = 1.0, util_sum = 0;
      size_t util_n = 0;
      for (const plan::DeviceShardStats& d : stats.per_device) {
        if (p.sim_ns == 0) break;
        const double u = static_cast<double>(d.busy_ns) /
                         static_cast<double>(p.sim_ns);
        util_min = std::min(util_min, u);
        util_sum += u;
        ++util_n;
      }
      const double util_avg = util_n > 0 ? util_sum / util_n : 0;
      if (util_n == 0) util_min = 0;

      std::printf("%5s %8d %7zu %11.3f %8.2f %5.2f %10llu %10llu %9.2f "
                  "%8.2f\n",
                  qname.c_str(), nd, p.shards, p.sim_ns / 1e6, p.speedup,
                  p.efficiency,
                  static_cast<unsigned long long>(p.exchange_p2p),
                  static_cast<unsigned long long>(p.exchange_via_host),
                  util_min, util_avg);
      points.push_back(std::move(p));
    }
  }

  std::printf("\nall answers correct, 1-device timeline identical, scaling "
              "gates met: %s\n",
              all_ok ? "OK" : "FAILED");

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    out << "{\n  \"backend\": \"" << opts.backend << "\",\n"
        << "  \"scale_factor\": " << opts.scale_factor << ",\n"
        << "  \"encoding\": " << (opts.use_encoding ? "true" : "false")
        << ",\n"
        << "  \"peer_island_size\": " << opts.island << ",\n"
        << "  \"all_ok\": " << (all_ok ? "true" : "false") << ",\n"
        << "  \"sweep\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      out << "    {\"query\": \"" << p.query << "\""
          << ", \"devices\": " << p.devices
          << ", \"shards\": " << p.shards
          << ", \"sim_ns\": " << p.sim_ns
          << ", \"t1_ns\": " << p.t1_ns
          << ", \"speedup\": " << p.speedup
          << ", \"efficiency\": " << p.efficiency
          << ", \"exchange_bytes\": " << p.exchange_bytes
          << ", \"exchange_p2p_bytes\": " << p.exchange_p2p
          << ", \"exchange_via_host_bytes\": " << p.exchange_via_host
          << ", \"broadcast_bytes\": " << p.broadcast_bytes
          << ", \"ok\": " << (p.ok ? "true" : "false")
          << ", \"per_device\": [";
      for (size_t d = 0; d < p.stats.per_device.size(); ++d) {
        const plan::DeviceShardStats& ds = p.stats.per_device[d];
        out << (d > 0 ? ", " : "") << "{\"device\": " << ds.device
            << ", \"shards\": " << ds.shards
            << ", \"rows\": " << ds.rows
            << ", \"busy_ns\": " << ds.busy_ns
            << ", \"upload_bytes\": " << ds.upload_bytes
            << ", \"download_bytes\": " << ds.download_bytes
            << ", \"peak_bytes\": " << ds.peak_bytes << "}";
      }
      out << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", opts.json_path.c_str());
  }

  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(stderr,
                 "usage: %s [--backend=NAME] [--queries=q1,q6,q14,q3,q4] "
                 "[--devices=1,2,4,8] [--shards=N] [--sf=F] [--island=N] "
                 "[--encoding=on|off] [--json=FILE]\n",
                 argv[0]);
    return 64;
  }
  try {
    return Run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_multidevice: %s\n", e.what());
    return 3;
  }
}
