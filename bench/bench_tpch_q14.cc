// R-T8 (extension): TPC-H Q14 end-to-end — part-lineitem join with a
// conditional (CASE WHEN) aggregate realized as a second selection.
#include "bench_common.h"
#include "tpch/queries.h"

namespace bench {

void Q14Bench(benchmark::State& state, const std::string& name,
              tpch::JoinStrategy strategy) {
  tpch::Config config;
  config.scale_factor = state.range(0) / 1000.0;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table part = tpch::GeneratePart(config);
  auto backend = core::BackendRegistry::Instance().Create(name);
  const auto dev_li = storage::UploadTable(backend->stream(), lineitem);
  const auto dev_part = storage::UploadTable(backend->stream(), part);

  tpch::RunQ14(*backend, dev_part, dev_li, tpch::Q14Params(),
               strategy);  // warm
  double pct = 0;
  for (auto _ : state) {
    Region region(*backend);
    pct = tpch::RunQ14(*backend, dev_part, dev_li, tpch::Q14Params(),
                       strategy);
    region.Stop(state);
  }
  state.counters["promo_pct"] = pct;
  state.counters["lineitem_rows"] = static_cast<double>(lineitem.num_rows());
}

void RegisterBenchmarks() {
  for (const auto& name : AllBackendNames()) {
    auto* b = benchmark::RegisterBenchmark(
        ("TpchQ14/" + name).c_str(), [name](benchmark::State& s) {
          Q14Bench(s, name, tpch::JoinStrategy::kAuto);
        });
    b->UseManualTime()->Iterations(1)->Arg(10);  // SF 0.01
  }
  auto* nlj = benchmark::RegisterBenchmark(
      "TpchQ14/Handwritten-nlj", [](benchmark::State& s) {
        Q14Bench(s, backends::kHandwritten, tpch::JoinStrategy::kNestedLoops);
      });
  nlj->UseManualTime()->Iterations(1)->Arg(10);
}

}  // namespace bench

BENCH_MAIN()
