// Chaos harness: resilience of the query layer under injected device faults.
//
// Drives N scheduler clients through the five TPC-H queries while a seeded
// gpusim::FaultInjector fires transient kernel faults, transfer faults, and
// one device-OOM into the hot paths. The fault schedule is transient-only
// and budgeted below the scheduler's retry budget, so a correct resilience
// layer must finish every query with the right answer — the harness exits
// non-zero if any query fails permanently (exit 2), any answer drifts from
// the host reference (exit 3), or a fault-free run after the chaos storm is
// not bit-identical in simulated time to the pre-storm golden run (exit 4:
// fault handling leaked into the cost model).
//
// Not a google-benchmark binary: the unit of work is a whole scheduler run
// and the checks need cross-run state, so it drives itself and optionally
// writes machine-readable JSON for CI archiving.
//
// Usage:
//   bench_chaos [--backend=Handwritten] [--clients=4] [--per-client=5]
//               [--seed=42] [--sf=0.005] [--json=FILE]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "backends/backends.h"
#include "core/registry.h"
#include "core/resilience.h"
#include "core/scheduler.h"
#include "gpusim/device.h"
#include "gpusim/fault.h"
#include "storage/device_column.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace {

struct Options {
  std::string backend = backends::kHandwritten;
  unsigned clients = 4;
  unsigned per_client = 5;  ///< queries submitted per client slot
  uint64_t seed = 42;
  double scale_factor = 0.005;
  std::string json_path;
};

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--backend=")) {
      opts->backend = v;
    } else if (const char* v = value("--clients=")) {
      opts->clients = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = value("--per-client=")) {
      opts->per_client = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = value("--seed=")) {
      opts->seed = std::stoull(v);
    } else if (const char* v = value("--sf=")) {
      opts->scale_factor = std::stod(v);
    } else if (const char* v = value("--json=")) {
      opts->json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return opts->clients > 0 && opts->per_client > 0;
}

const char* const kKinds[] = {"q1", "q3", "q4", "q6", "q14"};
constexpr size_t kNumKinds = 5;

/// One query's captured answer (only the member matching the kind is set).
struct Answer {
  std::vector<tpch::Q1Row> q1;
  std::vector<tpch::Q3Row> q3;
  std::vector<tpch::Q4Row> q4;
  double scalar = 0.0;  // q6 / q14
};

bool Near(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-6 * scale;
}

/// Compares a captured answer against the host reference; prints the first
/// mismatch.
bool CheckAnswer(const std::string& kind, const Answer& got,
                 const Answer& ref) {
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "WRONG ANSWER: %s %s\n", kind.c_str(), what);
    return false;
  };
  if (kind == "q1") {
    if (got.q1.size() != ref.q1.size()) return fail("row count differs");
    for (size_t i = 0; i < ref.q1.size(); ++i) {
      const tpch::Q1Row& g = got.q1[i];
      const tpch::Q1Row& r = ref.q1[i];
      if (g.returnflag != r.returnflag || g.linestatus != r.linestatus ||
          g.count_order != r.count_order || !Near(g.sum_qty, r.sum_qty) ||
          !Near(g.sum_base_price, r.sum_base_price) ||
          !Near(g.sum_disc_price, r.sum_disc_price) ||
          !Near(g.sum_charge, r.sum_charge) || !Near(g.avg_qty, r.avg_qty) ||
          !Near(g.avg_price, r.avg_price) || !Near(g.avg_disc, r.avg_disc)) {
        return fail("row mismatch");
      }
    }
    return true;
  }
  if (kind == "q3") {
    if (got.q3.size() != ref.q3.size()) return fail("row count differs");
    for (size_t i = 0; i < ref.q3.size(); ++i) {
      if (got.q3[i].orderkey != ref.q3[i].orderkey ||
          !Near(got.q3[i].revenue, ref.q3[i].revenue)) {
        return fail("row mismatch");
      }
    }
    return true;
  }
  if (kind == "q4") {
    if (got.q4.size() != ref.q4.size()) return fail("row count differs");
    for (size_t i = 0; i < ref.q4.size(); ++i) {
      if (got.q4[i].orderpriority != ref.q4[i].orderpriority ||
          got.q4[i].order_count != ref.q4[i].order_count) {
        return fail("row mismatch");
      }
    }
    return true;
  }
  if (!Near(got.scalar, ref.scalar)) return fail("scalar differs");
  return true;
}

int Run(const Options& opts) {
  core::RegisterBuiltinBackends();

  tpch::Config config;
  config.scale_factor = opts.scale_factor;
  const storage::Table lineitem = tpch::GenerateLineitem(config);
  const storage::Table orders = tpch::GenerateOrders(config);
  const storage::Table customer = tpch::GenerateCustomer(config);
  const storage::Table part = tpch::GeneratePart(config);

  gpusim::Device& device = gpusim::Device::Default();
  gpusim::Stream setup(device, gpusim::ApiProfile::Cuda());
  const storage::DeviceTable dev_lineitem =
      storage::UploadTable(setup, lineitem);
  const storage::DeviceTable dev_orders = storage::UploadTable(setup, orders);
  const storage::DeviceTable dev_customer =
      storage::UploadTable(setup, customer);
  const storage::DeviceTable dev_part = storage::UploadTable(setup, part);

  // Host reference answers, computed once.
  std::map<std::string, Answer> reference;
  reference["q1"].q1 = tpch::ReferenceQ1(lineitem);
  reference["q3"].q3 = tpch::ReferenceQ3(customer, orders, lineitem);
  reference["q4"].q4 = tpch::ReferenceQ4(orders, lineitem);
  reference["q6"].scalar = tpch::ReferenceQ6(lineitem);
  reference["q14"].scalar = tpch::ReferenceQ14(part, lineitem);

  const auto make_query = [&](const std::string& kind,
                              Answer* slot) -> core::QueryFn {
    if (kind == "q1") {
      return [&, slot](core::Backend& b) { slot->q1 = tpch::RunQ1(b, dev_lineitem); };
    }
    if (kind == "q3") {
      return [&, slot](core::Backend& b) {
        slot->q3 = tpch::RunQ3(b, dev_customer, dev_orders, dev_lineitem);
      };
    }
    if (kind == "q4") {
      return [&, slot](core::Backend& b) {
        slot->q4 = tpch::RunQ4(b, dev_orders, dev_lineitem);
      };
    }
    if (kind == "q6") {
      return [&, slot](core::Backend& b) { slot->scalar = tpch::RunQ6(b, dev_lineitem); };
    }
    if (kind == "q14") {
      return [&, slot](core::Backend& b) {
        slot->scalar = tpch::RunQ14(b, dev_part, dev_lineitem);
      };
    }
    throw std::invalid_argument("unknown query kind: " + kind);
  };

  // Runs every kind once on a single fault-free client and returns the
  // per-kind simulated time.
  const auto golden_pass = [&](const char* label,
                               std::vector<Answer>* answers) {
    answers->assign(kNumKinds, Answer());
    core::SchedulerOptions sched_opts;
    sched_opts.backend_name = opts.backend;
    sched_opts.num_clients = 1;
    core::QueryScheduler scheduler(sched_opts);
    for (size_t i = 0; i < kNumKinds; ++i) {
      scheduler.Submit(kKinds[i], make_query(kKinds[i], &(*answers)[i]));
    }
    scheduler.Drain();
    std::map<std::string, uint64_t> sim_ns;
    for (const core::QueryRecord& q : scheduler.Records()) {
      if (!q.ok) {
        throw std::runtime_error(std::string(label) + " run failed: " +
                                 q.label + ": " + q.error);
      }
      sim_ns[q.label] = q.simulated_ns;
    }
    return sim_ns;
  };

  std::printf("bench_chaos: backend=%s clients=%u per_client=%u seed=%llu "
              "sf=%g rows(lineitem)=%zu\n\n",
              opts.backend.c_str(), opts.clients, opts.per_client,
              static_cast<unsigned long long>(opts.seed), opts.scale_factor,
              lineitem.num_rows());

  // Warmup (pool + lazily-built structures), then the golden baseline and a
  // determinism re-check before any fault is armed.
  std::vector<Answer> golden_answers;
  golden_pass("warmup", &golden_answers);
  const std::map<std::string, uint64_t> golden = golden_pass("golden", &golden_answers);
  const std::map<std::string, uint64_t> golden2 =
      golden_pass("golden-recheck", &golden_answers);
  if (golden2 != golden) {
    std::fprintf(stderr,
                 "GOLDEN DRIFT: fault-free simulated time not deterministic "
                 "before injection\n");
    return 4;
  }
  for (size_t i = 0; i < kNumKinds; ++i) {
    if (!CheckAnswer(kKinds[i], golden_answers[i], reference[kKinds[i]])) {
      return 3;
    }
  }

  // Transient-only fault plan, budgeted below the retry budget: at most 4
  // kernel faults + 3 transfer faults (worst case all land on one query:
  // 8 attempts < max_attempts) plus one device OOM, which the scheduler
  // absorbs with a pool reclaim instead of an attempt.
  gpusim::FaultInjector injector(opts.seed);
  {
    gpusim::FaultRule kernel_rule;
    kernel_rule.site = gpusim::FaultSite::kKernel;
    kernel_rule.kind = gpusim::FaultKind::kTransientKernel;
    kernel_rule.probability = 0.0015;
    kernel_rule.max_fires = 4;
    injector.AddRule(kernel_rule);
    gpusim::FaultRule transfer_rule;
    transfer_rule.site = gpusim::FaultSite::kTransfer;
    transfer_rule.kind = gpusim::FaultKind::kTransfer;
    transfer_rule.probability = 0.0015;
    transfer_rule.max_fires = 3;
    injector.AddRule(transfer_rule);
    gpusim::FaultRule oom_rule;
    oom_rule.site = gpusim::FaultSite::kMalloc;
    oom_rule.kind = gpusim::FaultKind::kOutOfMemory;
    oom_rule.at_call = 50;
    oom_rule.max_fires = 1;
    injector.AddRule(oom_rule);
  }

  core::ResilienceManager::Global().Reset();
  device.set_fault_injector(&injector);

  core::SchedulerOptions chaos_opts;
  chaos_opts.backend_name = opts.backend;
  chaos_opts.num_clients = opts.clients;
  chaos_opts.queue_capacity = 2 * static_cast<size_t>(opts.clients);
  chaos_opts.retry.max_attempts = 10;

  const size_t total = static_cast<size_t>(opts.clients) * opts.per_client;
  std::vector<Answer> answers(total);
  std::vector<std::string> kinds(total);

  core::QueryScheduler scheduler(chaos_opts);
  for (size_t i = 0; i < total; ++i) {
    kinds[i] = kKinds[i % kNumKinds];
    scheduler.Submit(kinds[i], make_query(kinds[i], &answers[i]));
  }
  scheduler.Drain();
  device.set_fault_injector(nullptr);

  const core::SchedulerReport report = scheduler.Report();
  const gpusim::FaultInjectorStats fstats = injector.stats();
  const core::ResilienceStats& res = report.resilience;

  size_t failed = 0;
  size_t retried_queries = 0;
  int max_attempts_seen = 1;
  for (const core::QueryRecord& q : scheduler.Records()) {
    if (!q.ok) {
      ++failed;
      std::fprintf(stderr, "PERMANENT FAILURE: %s (%s, attempts=%d): %s\n",
                   q.label.c_str(), core::ErrorClassName(q.error_class),
                   q.attempts, q.error.c_str());
    }
    if (q.attempts > 1 || q.oom_reclaims > 0) ++retried_queries;
    max_attempts_seen = std::max(max_attempts_seen, q.attempts);
  }

  std::printf("fault schedule:   %llu injected (%llu kernel, %llu transfer, "
              "%llu oom) over %llu checks\n",
              static_cast<unsigned long long>(fstats.injected_total()),
              static_cast<unsigned long long>(fstats.injected_kernel),
              static_cast<unsigned long long>(fstats.injected_transfer),
              static_cast<unsigned long long>(fstats.injected_oom),
              static_cast<unsigned long long>(fstats.checks));
  std::printf("recovery:         %llu faults seen, %llu retries "
              "(%.3f ms backoff), %llu pool reclaims, %llu reroutes\n",
              static_cast<unsigned long long>(res.faults_seen),
              static_cast<unsigned long long>(res.retries),
              res.backoff_ns / 1e6,
              static_cast<unsigned long long>(res.oom_reclaims),
              static_cast<unsigned long long>(res.fallback_reroutes));
  std::printf("queries:          %zu completed, %zu recovered after faults, "
              "max attempts %d, %zu permanent failures\n",
              report.completed - failed, retried_queries, max_attempts_seen,
              failed);
  std::printf("device memory:    peak %.2f MiB (live+reserved), %llu bytes "
              "still reserved\n",
              static_cast<double>(report.device_peak_bytes) /
                  (1024.0 * 1024.0),
              static_cast<unsigned long long>(report.device_reserved_bytes));

  bool answers_ok = true;
  for (size_t i = 0; i < total; ++i) {
    if (!CheckAnswer(kinds[i], answers[i], reference[kinds[i]])) {
      answers_ok = false;
    }
  }

  // Post-storm fault-free pass must reproduce the golden timeline exactly:
  // fault handling may not leave residue in the cost model.
  std::vector<Answer> post_answers;
  const std::map<std::string, uint64_t> post =
      golden_pass("post-chaos", &post_answers);
  bool golden_ok = true;
  for (const auto& [label, ns] : golden) {
    const auto it = post.find(label);
    if (it == post.end() || it->second != ns) {
      std::fprintf(stderr,
                   "GOLDEN DRIFT: %s simulated %llu ns post-chaos, expected "
                   "%llu\n",
                   label.c_str(),
                   static_cast<unsigned long long>(
                       it == post.end() ? 0 : it->second),
                   static_cast<unsigned long long>(ns));
      golden_ok = false;
    }
  }

  std::printf("\nanswers vs host reference: %s\n",
              answers_ok ? "OK" : "MISMATCH");
  std::printf("fault-free golden timeline after chaos: %s\n",
              golden_ok ? "bit-identical" : "DRIFTED");

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    out << "{\n  \"backend\": \"" << opts.backend << "\",\n"
        << "  \"clients\": " << opts.clients << ",\n"
        << "  \"seed\": " << opts.seed << ",\n"
        << "  \"queries\": " << total << ",\n"
        << "  \"injected\": {\"kernel\": " << fstats.injected_kernel
        << ", \"transfer\": " << fstats.injected_transfer
        << ", \"oom\": " << fstats.injected_oom
        << ", \"device_lost\": " << fstats.injected_device_lost
        << ", \"checks\": " << fstats.checks << "},\n"
        << "  \"resilience\": {\"faults_seen\": " << res.faults_seen
        << ", \"retries\": " << res.retries
        << ", \"backoff_ns\": " << res.backoff_ns
        << ", \"oom_reclaims\": " << res.oom_reclaims
        << ", \"reroutes\": " << res.fallback_reroutes
        << ", \"deadline_misses\": " << res.deadline_misses
        << ", \"permanent_failures\": " << res.permanent_failures
        << ", \"breaker_opens\": " << res.breaker_opens << "},\n"
        << "  \"peak_bytes\": " << report.device_peak_bytes << ",\n"
        << "  \"reserved_bytes\": " << report.device_reserved_bytes << ",\n"
        << "  \"recovered_queries\": " << retried_queries << ",\n"
        << "  \"max_attempts\": " << max_attempts_seen << ",\n"
        << "  \"permanent_failures\": " << failed << ",\n"
        << "  \"answers_ok\": " << (answers_ok ? "true" : "false") << ",\n"
        << "  \"golden_ok\": " << (golden_ok ? "true" : "false") << "\n}\n";
    std::printf("wrote %s\n", opts.json_path.c_str());
  }

  if (failed > 0) return 2;
  if (!answers_ok) return 3;
  if (!golden_ok) return 4;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(stderr,
                 "usage: %s [--backend=NAME] [--clients=N] [--per-client=N] "
                 "[--seed=S] [--sf=F] [--json=FILE]\n",
                 argv[0]);
    return 64;
  }
  try {
    return Run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_chaos: %s\n", e.what());
    return 3;
  }
}
