file(REMOVE_RECURSE
  "CMakeFiles/trace_query.dir/trace_query.cc.o"
  "CMakeFiles/trace_query.dir/trace_query.cc.o.d"
  "trace_query"
  "trace_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
