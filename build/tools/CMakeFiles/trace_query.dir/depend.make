# Empty dependencies file for trace_query.
# This may be replaced when dependencies are built.
