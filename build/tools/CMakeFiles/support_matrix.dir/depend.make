# Empty dependencies file for support_matrix.
# This may be replaced when dependencies are built.
