file(REMOVE_RECURSE
  "CMakeFiles/support_matrix.dir/support_matrix.cc.o"
  "CMakeFiles/support_matrix.dir/support_matrix.cc.o.d"
  "support_matrix"
  "support_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
