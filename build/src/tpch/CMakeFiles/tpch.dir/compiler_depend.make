# Empty compiler generated dependencies file for tpch.
# This may be replaced when dependencies are built.
