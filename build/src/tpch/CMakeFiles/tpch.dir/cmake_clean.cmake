file(REMOVE_RECURSE
  "CMakeFiles/tpch.dir/datagen.cc.o"
  "CMakeFiles/tpch.dir/datagen.cc.o.d"
  "CMakeFiles/tpch.dir/q1.cc.o"
  "CMakeFiles/tpch.dir/q1.cc.o.d"
  "CMakeFiles/tpch.dir/q14.cc.o"
  "CMakeFiles/tpch.dir/q14.cc.o.d"
  "CMakeFiles/tpch.dir/q3.cc.o"
  "CMakeFiles/tpch.dir/q3.cc.o.d"
  "CMakeFiles/tpch.dir/q4.cc.o"
  "CMakeFiles/tpch.dir/q4.cc.o.d"
  "CMakeFiles/tpch.dir/q6.cc.o"
  "CMakeFiles/tpch.dir/q6.cc.o.d"
  "libtpch.a"
  "libtpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
