file(REMOVE_RECURSE
  "libtpch.a"
)
