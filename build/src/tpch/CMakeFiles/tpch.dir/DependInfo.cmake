
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpch/datagen.cc" "src/tpch/CMakeFiles/tpch.dir/datagen.cc.o" "gcc" "src/tpch/CMakeFiles/tpch.dir/datagen.cc.o.d"
  "/root/repo/src/tpch/q1.cc" "src/tpch/CMakeFiles/tpch.dir/q1.cc.o" "gcc" "src/tpch/CMakeFiles/tpch.dir/q1.cc.o.d"
  "/root/repo/src/tpch/q14.cc" "src/tpch/CMakeFiles/tpch.dir/q14.cc.o" "gcc" "src/tpch/CMakeFiles/tpch.dir/q14.cc.o.d"
  "/root/repo/src/tpch/q3.cc" "src/tpch/CMakeFiles/tpch.dir/q3.cc.o" "gcc" "src/tpch/CMakeFiles/tpch.dir/q3.cc.o.d"
  "/root/repo/src/tpch/q4.cc" "src/tpch/CMakeFiles/tpch.dir/q4.cc.o" "gcc" "src/tpch/CMakeFiles/tpch.dir/q4.cc.o.d"
  "/root/repo/src/tpch/q6.cc" "src/tpch/CMakeFiles/tpch.dir/q6.cc.o" "gcc" "src/tpch/CMakeFiles/tpch.dir/q6.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/storage.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
