
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/afsim/algorithm.cc" "src/afsim/CMakeFiles/afsim.dir/algorithm.cc.o" "gcc" "src/afsim/CMakeFiles/afsim.dir/algorithm.cc.o.d"
  "/root/repo/src/afsim/eval.cc" "src/afsim/CMakeFiles/afsim.dir/eval.cc.o" "gcc" "src/afsim/CMakeFiles/afsim.dir/eval.cc.o.d"
  "/root/repo/src/afsim/ops.cc" "src/afsim/CMakeFiles/afsim.dir/ops.cc.o" "gcc" "src/afsim/CMakeFiles/afsim.dir/ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
