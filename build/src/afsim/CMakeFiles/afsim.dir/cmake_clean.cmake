file(REMOVE_RECURSE
  "CMakeFiles/afsim.dir/algorithm.cc.o"
  "CMakeFiles/afsim.dir/algorithm.cc.o.d"
  "CMakeFiles/afsim.dir/eval.cc.o"
  "CMakeFiles/afsim.dir/eval.cc.o.d"
  "CMakeFiles/afsim.dir/ops.cc.o"
  "CMakeFiles/afsim.dir/ops.cc.o.d"
  "libafsim.a"
  "libafsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
