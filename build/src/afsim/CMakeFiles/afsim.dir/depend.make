# Empty dependencies file for afsim.
# This may be replaced when dependencies are built.
