file(REMOVE_RECURSE
  "libafsim.a"
)
