# Empty compiler generated dependencies file for backends.
# This may be replaced when dependencies are built.
