file(REMOVE_RECURSE
  "libbackends.a"
)
