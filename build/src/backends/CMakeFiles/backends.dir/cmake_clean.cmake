file(REMOVE_RECURSE
  "CMakeFiles/backends.dir/arrayfire_backend.cc.o"
  "CMakeFiles/backends.dir/arrayfire_backend.cc.o.d"
  "CMakeFiles/backends.dir/boost_backend.cc.o"
  "CMakeFiles/backends.dir/boost_backend.cc.o.d"
  "CMakeFiles/backends.dir/handwritten_backend.cc.o"
  "CMakeFiles/backends.dir/handwritten_backend.cc.o.d"
  "CMakeFiles/backends.dir/register.cc.o"
  "CMakeFiles/backends.dir/register.cc.o.d"
  "CMakeFiles/backends.dir/thrust_backend.cc.o"
  "CMakeFiles/backends.dir/thrust_backend.cc.o.d"
  "libbackends.a"
  "libbackends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
