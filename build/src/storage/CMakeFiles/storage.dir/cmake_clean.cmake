file(REMOVE_RECURSE
  "CMakeFiles/storage.dir/device_column.cc.o"
  "CMakeFiles/storage.dir/device_column.cc.o.d"
  "CMakeFiles/storage.dir/table.cc.o"
  "CMakeFiles/storage.dir/table.cc.o.d"
  "libstorage.a"
  "libstorage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
