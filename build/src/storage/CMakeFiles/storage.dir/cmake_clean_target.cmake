file(REMOVE_RECURSE
  "libstorage.a"
)
