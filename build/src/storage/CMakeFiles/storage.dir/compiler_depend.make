# Empty compiler generated dependencies file for storage.
# This may be replaced when dependencies are built.
