# Empty compiler generated dependencies file for gpusim.
# This may be replaced when dependencies are built.
