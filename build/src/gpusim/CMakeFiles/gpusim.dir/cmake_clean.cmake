file(REMOVE_RECURSE
  "CMakeFiles/gpusim.dir/device.cc.o"
  "CMakeFiles/gpusim.dir/device.cc.o.d"
  "CMakeFiles/gpusim.dir/thread_pool.cc.o"
  "CMakeFiles/gpusim.dir/thread_pool.cc.o.d"
  "CMakeFiles/gpusim.dir/trace.cc.o"
  "CMakeFiles/gpusim.dir/trace.cc.o.d"
  "libgpusim.a"
  "libgpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
