
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cc" "src/gpusim/CMakeFiles/gpusim.dir/device.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/device.cc.o.d"
  "/root/repo/src/gpusim/thread_pool.cc" "src/gpusim/CMakeFiles/gpusim.dir/thread_pool.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/thread_pool.cc.o.d"
  "/root/repo/src/gpusim/trace.cc" "src/gpusim/CMakeFiles/gpusim.dir/trace.cc.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
