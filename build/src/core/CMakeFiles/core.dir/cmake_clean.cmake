file(REMOVE_RECURSE
  "CMakeFiles/core.dir/backend.cc.o"
  "CMakeFiles/core.dir/backend.cc.o.d"
  "CMakeFiles/core.dir/metrics.cc.o"
  "CMakeFiles/core.dir/metrics.cc.o.d"
  "CMakeFiles/core.dir/registry.cc.o"
  "CMakeFiles/core.dir/registry.cc.o.d"
  "CMakeFiles/core.dir/support_matrix.cc.o"
  "CMakeFiles/core.dir/support_matrix.cc.o.d"
  "CMakeFiles/core.dir/survey.cc.o"
  "CMakeFiles/core.dir/survey.cc.o.d"
  "libcore.a"
  "libcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
