
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cc" "src/core/CMakeFiles/core.dir/backend.cc.o" "gcc" "src/core/CMakeFiles/core.dir/backend.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/core.dir/metrics.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/core.dir/registry.cc.o.d"
  "/root/repo/src/core/support_matrix.cc" "src/core/CMakeFiles/core.dir/support_matrix.cc.o" "gcc" "src/core/CMakeFiles/core.dir/support_matrix.cc.o.d"
  "/root/repo/src/core/survey.cc" "src/core/CMakeFiles/core.dir/survey.cc.o" "gcc" "src/core/CMakeFiles/core.dir/survey.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
