# Empty compiler generated dependencies file for operator_comparison.
# This may be replaced when dependencies are built.
