file(REMOVE_RECURSE
  "CMakeFiles/operator_comparison.dir/operator_comparison.cpp.o"
  "CMakeFiles/operator_comparison.dir/operator_comparison.cpp.o.d"
  "operator_comparison"
  "operator_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
