file(REMOVE_RECURSE
  "CMakeFiles/plugin_backend.dir/plugin_backend.cpp.o"
  "CMakeFiles/plugin_backend.dir/plugin_backend.cpp.o.d"
  "plugin_backend"
  "plugin_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugin_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
