# Empty dependencies file for plugin_backend.
# This may be replaced when dependencies are built.
