# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_thrust "/root/repo/build/examples/quickstart" "Thrust")
set_tests_properties(example_quickstart_thrust PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_arrayfire "/root/repo/build/examples/quickstart" "ArrayFire")
set_tests_properties(example_quickstart_arrayfire PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tpch_queries "/root/repo/build/examples/tpch_queries" "0.002")
set_tests_properties(example_tpch_queries PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plugin_backend "/root/repo/build/examples/plugin_backend")
set_tests_properties(example_plugin_backend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_operator_comparison "/root/repo/build/examples/operator_comparison" "65536")
set_tests_properties(example_operator_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
