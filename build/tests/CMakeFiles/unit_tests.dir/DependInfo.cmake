
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/afsim_test.cc" "tests/CMakeFiles/unit_tests.dir/afsim_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/afsim_test.cc.o.d"
  "/root/repo/tests/algorithms_test.cc" "tests/CMakeFiles/unit_tests.dir/algorithms_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/algorithms_test.cc.o.d"
  "/root/repo/tests/backend_test.cc" "tests/CMakeFiles/unit_tests.dir/backend_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/backend_test.cc.o.d"
  "/root/repo/tests/bcsim_test.cc" "tests/CMakeFiles/unit_tests.dir/bcsim_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/bcsim_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/unit_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/unit_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/framework_test.cc" "tests/CMakeFiles/unit_tests.dir/framework_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/framework_test.cc.o.d"
  "/root/repo/tests/gpusim_test.cc" "tests/CMakeFiles/unit_tests.dir/gpusim_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/gpusim_test.cc.o.d"
  "/root/repo/tests/handwritten_test.cc" "tests/CMakeFiles/unit_tests.dir/handwritten_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/handwritten_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/unit_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/thrustsim_test.cc" "tests/CMakeFiles/unit_tests.dir/thrustsim_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/thrustsim_test.cc.o.d"
  "/root/repo/tests/tpch_test.cc" "tests/CMakeFiles/unit_tests.dir/tpch_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/tpch_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/afsim/CMakeFiles/afsim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/backends.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/tpch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
