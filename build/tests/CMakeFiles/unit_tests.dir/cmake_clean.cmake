file(REMOVE_RECURSE
  "CMakeFiles/unit_tests.dir/afsim_test.cc.o"
  "CMakeFiles/unit_tests.dir/afsim_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/algorithms_test.cc.o"
  "CMakeFiles/unit_tests.dir/algorithms_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/backend_test.cc.o"
  "CMakeFiles/unit_tests.dir/backend_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/bcsim_test.cc.o"
  "CMakeFiles/unit_tests.dir/bcsim_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/differential_test.cc.o"
  "CMakeFiles/unit_tests.dir/differential_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/edge_cases_test.cc.o"
  "CMakeFiles/unit_tests.dir/edge_cases_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/framework_test.cc.o"
  "CMakeFiles/unit_tests.dir/framework_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/gpusim_test.cc.o"
  "CMakeFiles/unit_tests.dir/gpusim_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/handwritten_test.cc.o"
  "CMakeFiles/unit_tests.dir/handwritten_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/storage_test.cc.o"
  "CMakeFiles/unit_tests.dir/storage_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/thrustsim_test.cc.o"
  "CMakeFiles/unit_tests.dir/thrustsim_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/tpch_test.cc.o"
  "CMakeFiles/unit_tests.dir/tpch_test.cc.o.d"
  "unit_tests"
  "unit_tests.pdb"
  "unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
