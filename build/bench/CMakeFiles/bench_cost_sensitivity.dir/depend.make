# Empty dependencies file for bench_cost_sensitivity.
# This may be replaced when dependencies are built.
