file(REMOVE_RECURSE
  "CMakeFiles/bench_group_by.dir/bench_group_by.cc.o"
  "CMakeFiles/bench_group_by.dir/bench_group_by.cc.o.d"
  "bench_group_by"
  "bench_group_by.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_by.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
