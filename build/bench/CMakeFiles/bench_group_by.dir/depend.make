# Empty dependencies file for bench_group_by.
# This may be replaced when dependencies are built.
