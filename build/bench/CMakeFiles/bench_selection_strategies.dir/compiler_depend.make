# Empty compiler generated dependencies file for bench_selection_strategies.
# This may be replaced when dependencies are built.
