file(REMOVE_RECURSE
  "CMakeFiles/bench_selection_strategies.dir/bench_selection_strategies.cc.o"
  "CMakeFiles/bench_selection_strategies.dir/bench_selection_strategies.cc.o.d"
  "bench_selection_strategies"
  "bench_selection_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selection_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
