# Empty dependencies file for bench_tpch_q1.
# This may be replaced when dependencies are built.
