file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_q1.dir/bench_tpch_q1.cc.o"
  "CMakeFiles/bench_tpch_q1.dir/bench_tpch_q1.cc.o.d"
  "bench_tpch_q1"
  "bench_tpch_q1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_q1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
