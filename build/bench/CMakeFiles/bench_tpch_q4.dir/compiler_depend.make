# Empty compiler generated dependencies file for bench_tpch_q4.
# This may be replaced when dependencies are built.
