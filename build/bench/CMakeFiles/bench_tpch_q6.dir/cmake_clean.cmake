file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_q6.dir/bench_tpch_q6.cc.o"
  "CMakeFiles/bench_tpch_q6.dir/bench_tpch_q6.cc.o.d"
  "bench_tpch_q6"
  "bench_tpch_q6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_q6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
