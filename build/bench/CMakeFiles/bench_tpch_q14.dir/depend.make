# Empty dependencies file for bench_tpch_q14.
# This may be replaced when dependencies are built.
