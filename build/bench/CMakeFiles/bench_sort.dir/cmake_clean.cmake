file(REMOVE_RECURSE
  "CMakeFiles/bench_sort.dir/bench_sort.cc.o"
  "CMakeFiles/bench_sort.dir/bench_sort.cc.o.d"
  "bench_sort"
  "bench_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
