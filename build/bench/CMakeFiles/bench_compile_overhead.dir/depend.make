# Empty dependencies file for bench_compile_overhead.
# This may be replaced when dependencies are built.
