file(REMOVE_RECURSE
  "CMakeFiles/bench_compile_overhead.dir/bench_compile_overhead.cc.o"
  "CMakeFiles/bench_compile_overhead.dir/bench_compile_overhead.cc.o.d"
  "bench_compile_overhead"
  "bench_compile_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compile_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
